"""Equivalence tests: batched trajectory engine vs the sequential loop path.

The batched engine must be *bit-for-bit* interchangeable with the loop
simulator under a fixed seed: same per-trajectory fidelities for any batch
size, across all three strategy regimes (qubit / mixed / full).
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import gate_unitary
from repro.core.compiler import compile_circuit
from repro.core.strategies import Strategy
from repro.noise.batched import BatchedTrajectoryEngine
from repro.noise.model import NoiseModel
from repro.noise.program import (
    GateStep,
    _monomial_structure,
    apply_kernel,
    apply_kernel_batch,
    compile_program,
)
from repro.noise.trajectory import TrajectorySimulator
from repro.qudit.random import haar_random_state
from repro.qudit.states import apply_unitary, apply_unitary_batch

REGIME_STRATEGIES = (
    Strategy.QUBIT_ONLY,
    Strategy.MIXED_RADIX_CCZ,
    Strategy.FULL_QUQUART,
)


def _toffoli_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(4, name="batched-equivalence")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.ccx(0, 1, 2)
    circuit.cx(2, 3)
    circuit.ccx(1, 2, 3)
    return circuit


class TestKernelEquivalence:
    """Batched kernels reproduce the scalar kernels per batch row, bit for bit."""

    @pytest.mark.parametrize("strategy", REGIME_STRATEGIES)
    def test_every_compiled_op_batched_kernel_matches_scalar(self, strategy):
        compiled = compile_circuit(_toffoli_circuit(), strategy)
        physical = compiled.physical_circuit
        program = compile_program(physical, NoiseModel())
        dims = physical.device_dims
        rng = np.random.default_rng(7)
        batch = np.array([haar_random_state(dims, rng) for _ in range(5)])
        for step in program.ideal_steps:
            expected = np.stack([apply_kernel(row, step.kernel, dims) for row in batch])
            produced = apply_kernel_batch(batch.copy(), step.kernel, dims)
            assert np.array_equal(produced, expected), step.op.label

    @pytest.mark.parametrize("strategy", REGIME_STRATEGIES)
    def test_scalar_kernels_agree_with_dense_reference(self, strategy):
        """Structured kernels implement the same unitary as a dense apply."""
        compiled = compile_circuit(_toffoli_circuit(), strategy)
        physical = compiled.physical_circuit
        program = compile_program(physical, NoiseModel())
        dims = physical.device_dims
        rng = np.random.default_rng(11)
        state = haar_random_state(dims, rng)
        for step in program.ideal_steps:
            produced = apply_kernel(state, step.kernel, dims)
            reference = apply_unitary(state, physical.op_unitary(step.op), step.op.devices, dims)
            assert np.allclose(produced, reference), step.op.label

    def test_apply_unitary_batch_matches_rowwise(self):
        rng = np.random.default_rng(3)
        dims = (4, 2, 4, 4)
        states = np.array([haar_random_state(dims, rng) for _ in range(6)])
        for targets, op_dim in (((1,), 2), ((0, 1), 8), ((2, 3), 16), ((3, 0), 16)):
            matrix = rng.standard_normal((op_dim, op_dim)) + 1j * rng.standard_normal(
                (op_dim, op_dim)
            )
            produced = apply_unitary_batch(states, matrix, targets, dims)
            expected = np.stack(
                [apply_unitary(row, matrix, targets, dims) for row in states]
            )
            assert np.array_equal(produced, expected), targets

    def test_monomial_classification(self):
        assert _monomial_structure(gate_unitary("CX")) is not None
        assert _monomial_structure(gate_unitary("SWAP")) is not None
        source, phases = _monomial_structure(gate_unitary("CCZ"))
        assert np.array_equal(source, np.arange(8))  # diagonal
        assert phases[-1] == -1.0
        assert _monomial_structure(gate_unitary("H")) is None
        # T is diagonal (hence monomial) even though its phase is irrational.
        source, _ = _monomial_structure(gate_unitary("T"))
        assert np.array_equal(source, np.arange(2))


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("strategy", REGIME_STRATEGIES)
    @pytest.mark.parametrize("batch_size", (1, 4, 7))
    def test_batched_matches_loop_fidelities_bitwise(self, strategy, batch_size):
        compiled = compile_circuit(_toffoli_circuit(), strategy)
        physical = compiled.physical_circuit
        trajectories = 10

        loop = TrajectorySimulator(NoiseModel(), rng=123).average_fidelity(
            physical, num_trajectories=trajectories
        )
        batched = TrajectorySimulator(NoiseModel(), rng=123).average_fidelity(
            physical, num_trajectories=trajectories, batch_size=batch_size
        )
        assert batched.fidelities == loop.fidelities

    def test_noiseless_batched_matches_ideal(self):
        compiled = compile_circuit(_toffoli_circuit(), Strategy.MIXED_RADIX_CCZ)
        physical = compiled.physical_circuit
        result = TrajectorySimulator(NoiseModel.noiseless(), rng=0).average_fidelity(
            physical, num_trajectories=4, batch_size=4
        )
        assert result.fidelities == pytest.approx([1.0] * 4)

    def test_program_step_counts(self):
        compiled = compile_circuit(_toffoli_circuit(), Strategy.MIXED_RADIX_CCZ)
        physical = compiled.physical_circuit
        program = compile_program(physical, NoiseModel())
        gate_steps = [s for s in program.steps if isinstance(s, GateStep)]
        assert len(gate_steps) == len(physical.ops)
        assert len(program.ideal_steps) == len(physical.ops)

    def test_generic_kernel_fallback_still_bitwise_equal(self, monkeypatch):
        """With the gather-index budget exhausted, multi-device monomial ops
        fall back to the generic GEMM kernel; the batched engine must still
        apply them (regression: fresh result arrays were once discarded) and
        stay bit-for-bit equal to the loop path."""
        import repro.noise.program as program_module

        monkeypatch.setattr(program_module, "_MAX_GATHER_ENTRIES", 0)
        compiled = compile_circuit(_toffoli_circuit(), Strategy.MIXED_RADIX_CCZ)
        physical = compiled.physical_circuit
        program = compile_program(physical, NoiseModel())
        kinds = {step.kernel.kind for step in program.ideal_steps}
        assert "generic" in kinds  # the fallback really is exercised

        loop = TrajectorySimulator(NoiseModel(), rng=5).average_fidelity(
            physical, num_trajectories=6
        )
        batched = TrajectorySimulator(NoiseModel(), rng=5).average_fidelity(
            physical, num_trajectories=6, batch_size=3
        )
        assert batched.fidelities == loop.fidelities

    def test_engine_accepts_prebuilt_program(self):
        compiled = compile_circuit(_toffoli_circuit(), Strategy.FULL_QUQUART)
        physical = compiled.physical_circuit
        program = compile_program(physical, NoiseModel())
        engine = BatchedTrajectoryEngine(physical, NoiseModel(), program=program)
        assert engine.program is program

    def test_batch_size_validation(self):
        compiled = compile_circuit(_toffoli_circuit(), Strategy.QUBIT_ONLY)
        simulator = TrajectorySimulator(NoiseModel(), rng=0)
        with pytest.raises(ValueError):
            simulator.average_fidelity(
                compiled.physical_circuit, num_trajectories=2, batch_size=0
            )
