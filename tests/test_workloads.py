"""Unit tests for the benchmark workloads (Section 6.1)."""

import numpy as np
import pytest

from repro.qudit.states import basis_state, fidelity
from repro.workloads import (
    cuccaro_adder,
    generalized_toffoli,
    qram_circuit,
    select_circuit,
    synthetic_cx_ccx_circuit,
    workload_by_name,
)


class TestGeneralizedToffoli:
    @pytest.mark.parametrize("n", [3, 4, 5, 7, 9])
    def test_builds_for_various_sizes(self, n):
        circuit = generalized_toffoli(n)
        assert circuit.num_qubits == n
        ops = circuit.count_ops()
        assert set(ops) <= {"CCX", "CX"}

    def test_semantics_all_controls_one_flips_target(self):
        circuit = generalized_toffoli(7)
        num_controls = (7 + 1) // 2
        levels = [0] * 7
        for control in range(num_controls):
            levels[control] = 1
        state = circuit.apply_to_state(basis_state(levels, (2,) * 7))
        expected = list(levels)
        expected[-1] = 1
        assert fidelity(state, basis_state(expected, (2,) * 7)) == pytest.approx(1.0)

    def test_semantics_one_control_zero_keeps_target(self):
        circuit = generalized_toffoli(7)
        num_controls = (7 + 1) // 2
        levels = [1] * num_controls + [0] * (7 - num_controls)
        levels[0] = 0
        state = circuit.apply_to_state(basis_state(levels, (2,) * 7))
        assert fidelity(state, basis_state(levels, (2,) * 7)) == pytest.approx(1.0)

    def test_ancillas_are_restored(self):
        circuit = generalized_toffoli(9)
        num_controls = (9 + 1) // 2
        levels = [1] * num_controls + [0] * (9 - num_controls)
        state = circuit.apply_to_state(basis_state(levels, (2,) * 9))
        expected = list(levels)
        expected[-1] = 1
        assert fidelity(state, basis_state(expected, (2,) * 9)) == pytest.approx(1.0)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generalized_toffoli(2)


class TestCuccaroAdder:
    def _add(self, a_value: int, b_value: int, bits: int) -> tuple[int, int]:
        """Simulate the adder on computational basis inputs."""
        num_qubits = 2 * bits + 2
        circuit = cuccaro_adder(num_qubits)
        levels = [0] * num_qubits
        for i in range(bits):
            levels[1 + 2 * i] = (b_value >> i) & 1
            levels[2 + 2 * i] = (a_value >> i) & 1
        state = circuit.apply_to_state(basis_state(levels, (2,) * num_qubits))
        index = int(np.argmax(np.abs(state)))
        out_levels = [(index >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        b_out = sum(out_levels[1 + 2 * i] << i for i in range(bits))
        carry = out_levels[2 * bits + 1]
        return b_out, carry

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (2, 3), (3, 3)])
    def test_two_bit_addition(self, a, b):
        b_out, carry = self._add(a, b, bits=2)
        assert b_out + (carry << 2) == a + b

    def test_structure(self):
        circuit = cuccaro_adder(10)
        ops = circuit.count_ops()
        assert ops["CCX"] == 8  # 2 per MAJ/UMA pair for 4 bits
        assert circuit.num_three_qubit_gates() == 8

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            cuccaro_adder(3)


class TestQram:
    def test_structure_is_cswap_dominated(self):
        circuit = qram_circuit(9)
        ops = circuit.count_ops()
        assert ops["CSWAP"] >= 2 * ops.get("H", 0)
        assert circuit.num_three_qubit_gates() == ops["CSWAP"]

    def test_round_trip_restores_bus(self):
        # With the address in a basis state, routing out and back must return
        # the bus to its original |1> and leave the cells unchanged.
        circuit = qram_circuit(6)
        state = circuit.statevector()
        # The bus qubit is index num_address = 1; check its marginal is |1>.
        probs = np.abs(state) ** 2
        bus_one = sum(
            p for index, p in enumerate(probs) if (index >> (6 - 1 - 1)) & 1
        )
        assert bus_one == pytest.approx(1.0)

    def test_rounds_parameter(self):
        assert len(qram_circuit(6, rounds=2)) > len(qram_circuit(6, rounds=1))
        with pytest.raises(ValueError):
            qram_circuit(6, rounds=0)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            qram_circuit(2)


class TestSelect:
    def test_structure(self):
        circuit = select_circuit(9)
        ops = circuit.count_ops()
        assert ops["CCX"] > 0
        assert ops.get("CX", 0) + ops.get("CZ", 0) > 0

    def test_deterministic_for_fixed_seed(self):
        assert select_circuit(9, seed=5) == select_circuit(9, seed=5)
        assert select_circuit(9, seed=5) != select_circuit(9, seed=6)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            select_circuit(4)


class TestSynthetic:
    def test_cx_fraction_extremes(self):
        pure_cx = synthetic_cx_ccx_circuit(6, num_gates=20, cx_fraction=1.0)
        pure_ccx = synthetic_cx_ccx_circuit(6, num_gates=20, cx_fraction=0.0)
        assert pure_cx.count_ops() == {"CX": 20}
        assert pure_ccx.count_ops() == {"CCX": 20}

    def test_mixed_fraction(self):
        circuit = synthetic_cx_ccx_circuit(8, num_gates=200, cx_fraction=0.6, seed=3)
        ops = circuit.count_ops()
        assert 0.45 < ops["CX"] / 200 < 0.75

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            synthetic_cx_ccx_circuit(2)
        with pytest.raises(ValueError):
            synthetic_cx_ccx_circuit(5, cx_fraction=1.5)
        with pytest.raises(ValueError):
            synthetic_cx_ccx_circuit(5, num_gates=0)


class TestWorkloadRegistry:
    @pytest.mark.parametrize("name", ["cnu", "cuccaro", "qram", "select", "synthetic"])
    def test_lookup(self, name):
        circuit = workload_by_name(name, 8)
        assert circuit.num_qubits == 8

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            workload_by_name("unknown", 8)
