"""Unit tests for the ququart gate-embedding machinery (Section 3.2)."""

import numpy as np
import pytest

from repro.circuits.library import gate_unitary
from repro.qudit.states import basis_state, fidelity
from repro.qudit.unitaries import (
    QUBIT_ENCODING,
    decode_ququart_state,
    embed_qubit_unitary,
    encode_qubit_pair,
    encoding_permutation,
    internal_unitary,
    qubit_slots,
    slots_per_device,
)


class TestEncoding:
    def test_encoding_map_is_binary_expansion(self):
        for (q0, q1), level in QUBIT_ENCODING.items():
            assert level == 2 * q0 + q1

    def test_encode_qubit_pair_matches_kron(self):
        zero = np.array([1, 0], dtype=complex)
        one = np.array([0, 1], dtype=complex)
        assert np.allclose(encode_qubit_pair(one, zero), basis_state((2,), (4,)))
        assert np.allclose(encode_qubit_pair(one, one), basis_state((3,), (4,)))

    def test_decode_round_trip(self):
        rng = np.random.default_rng(3)
        pair = rng.normal(size=4) + 1j * rng.normal(size=4)
        pair /= np.linalg.norm(pair)
        assert np.allclose(decode_ququart_state(pair), pair)

    def test_slots_per_device(self):
        assert slots_per_device(2) == 1
        assert slots_per_device(4) == 2
        with pytest.raises(ValueError):
            slots_per_device(3)

    def test_qubit_slots_enumeration(self):
        assert qubit_slots((4, 2)) == [(0, 0), (0, 1), (1, 0)]
        assert qubit_slots((2, 4)) == [(0, 0), (1, 0), (1, 1)]


class TestEmbedding:
    def test_single_qubit_gate_on_slot0(self):
        x = gate_unitary("X")
        embedded = embed_qubit_unitary(x, [(0, 0)], (4,))
        # X on the high encoded bit maps levels 0<->2 and 1<->3.
        assert np.allclose(embedded @ basis_state((0,), (4,)), basis_state((2,), (4,)))
        assert np.allclose(embedded @ basis_state((1,), (4,)), basis_state((3,), (4,)))

    def test_single_qubit_gate_on_slot1(self):
        x = gate_unitary("X")
        embedded = embed_qubit_unitary(x, [(0, 1)], (4,))
        assert np.allclose(embedded @ basis_state((0,), (4,)), basis_state((1,), (4,)))
        assert np.allclose(embedded @ basis_state((2,), (4,)), basis_state((3,), (4,)))

    def test_internal_cx_is_level_permutation(self):
        cx = gate_unitary("CX")
        # Control slot 0, target slot 1: |2> -> |3>, |3> -> |2>.
        embedded = embed_qubit_unitary(cx, [(0, 0), (0, 1)], (4,))
        assert np.allclose(embedded @ basis_state((2,), (4,)), basis_state((3,), (4,)))
        assert np.allclose(embedded @ basis_state((3,), (4,)), basis_state((2,), (4,)))
        assert np.allclose(embedded @ basis_state((1,), (4,)), basis_state((1,), (4,)))

    def test_cx0_swaps_levels_1_and_3(self):
        # CX0 (control = second encoded qubit, target = first) swaps |1> and |3>
        # as described in Section 3.2.
        cx = gate_unitary("CX")
        embedded = embed_qubit_unitary(cx, [(0, 1), (0, 0)], (4,))
        assert np.allclose(embedded @ basis_state((1,), (4,)), basis_state((3,), (4,)))
        assert np.allclose(embedded @ basis_state((3,), (4,)), basis_state((1,), (4,)))

    def test_mixed_radix_ccx_is_3_controlled_x(self):
        ccx = gate_unitary("CCX")
        embedded = embed_qubit_unitary(ccx, [(0, 0), (0, 1), (1, 0)], (4, 2))
        # Only the ququart |3> state (= |11>) flips the bare qubit.
        assert np.allclose(embedded @ basis_state((3, 0), (4, 2)), basis_state((3, 1), (4, 2)))
        assert np.allclose(embedded @ basis_state((2, 0), (4, 2)), basis_state((2, 0), (4, 2)))
        assert np.allclose(embedded @ basis_state((1, 0), (4, 2)), basis_state((1, 0), (4, 2)))

    def test_embedding_preserves_unitarity(self):
        rng = np.random.default_rng(5)
        from repro.qudit.random import haar_random_unitary

        gate = haar_random_unitary(4, rng)
        embedded = embed_qubit_unitary(gate, [(0, 1), (1, 0)], (4, 2))
        assert np.allclose(embedded @ embedded.conj().T, np.eye(8), atol=1e-10)

    def test_full_ququart_cx_logical_equivalence(self):
        cx = gate_unitary("CX")
        embedded = embed_qubit_unitary(cx, [(0, 0), (1, 1)], (4, 4))
        # Control = slot 0 of device A (high bit), target = slot 1 of device B.
        state = basis_state((2, 0), (4, 4))
        assert np.allclose(embedded @ state, basis_state((2, 1), (4, 4)))
        state = basis_state((1, 0), (4, 4))
        assert np.allclose(embedded @ state, basis_state((1, 0), (4, 4)))

    def test_invalid_slot_rejected(self):
        with pytest.raises(ValueError):
            embed_qubit_unitary(gate_unitary("X"), [(0, 1)], (2,))
        with pytest.raises(ValueError):
            embed_qubit_unitary(gate_unitary("CX"), [(0, 0), (0, 0)], (4,))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            embed_qubit_unitary(gate_unitary("CX"), [(0, 0)], (4,))

    def test_internal_unitary_validates_shape(self):
        with pytest.raises(ValueError):
            internal_unitary(np.eye(2))
        assert np.allclose(internal_unitary(gate_unitary("SWAP")), gate_unitary("SWAP"))


class TestEncodingPermutation:
    def test_enc_moves_bare_qubit_into_slot0(self):
        enc = encoding_permutation(qubit_first=True)  # dims (2, 4)
        # Bare qubit |1>, ququart holding a qubit |b> in slot 1 (levels 0/1).
        state = basis_state((1, 1), (2, 4))
        out = enc @ state
        # After ENC the ququart should be |2*1 + 1> = |3> and the qubit |0>.
        assert fidelity(out, basis_state((0, 3), (2, 4))) == pytest.approx(1.0)

    def test_enc_is_self_inverse(self):
        enc = encoding_permutation(qubit_first=False)
        assert np.allclose(enc @ enc, np.eye(8))

    def test_enc_is_unitary(self):
        enc = encoding_permutation()
        assert np.allclose(enc @ enc.conj().T, np.eye(8))
