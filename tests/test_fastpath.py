"""Tests for the checkpointed no-jump trajectory fast path.

The contract (ISSUE 5 acceptance): with the fast path enabled — the process
default — every fidelity is **bit-for-bit identical** to the explicit slow
paths, for loop, batched and multi-worker execution, fused and unfused
programs, clean and jump-heavy noise regimes, warm and cold record caches.
The fast path may only move work, never a single bit of the results.

The property suite additionally pins the numerical assumptions the fast
path is built on: batched population/scale helpers match their scalar
counterparts element for element, the stateless draw replay reproduces
``draw_idle_choice`` decisions exactly, bulk RNG draws equal scalar draws,
and generator cloning via ``bit_generator.state`` is an exact snapshot.
"""

import numpy as np
import pytest

import repro.noise.fastpath as fastpath_mod
from repro.circuits.circuit import QuantumCircuit
from repro.core.compile_cache import reset_cache
from repro.core.compiler import compile_circuit
from repro.core.strategies import Strategy
from repro.experiments import sweep as sweep_mod
from repro.experiments.fidelity_sweep import fidelity_sweep_points
from repro.experiments.shard import ShardPlanner, merge_shards, run_shard, save_plan
from repro.experiments.sweep import SweepRunner
from repro.noise.fastpath import (
    NoJumpRecord,
    RecordStore,
    checkpoint_stride,
    draw_schedule,
    fastpath_enabled,
    get_record_store,
    reset_fastpath,
    run_fastpath_fidelities,
    stats,
)
from repro.noise.model import NoiseModel
from repro.noise.program import (
    GateStep,
    IdleStep,
    apply_kernel,
    cached_compile_program,
    device_populations,
    device_populations_batch,
    draw_idle_choice,
    idle_no_jump_terms,
    no_jump_scales,
    no_jump_scales_batch,
)
from repro.noise.trajectory import TrajectorySimulator
from repro.qudit.random import haar_random_state
from repro.topology.device import CoherenceModel
from random_circuits import random_logical_circuit
from helpers import mixed_physical

#: A decohering model whose idle windows jump constantly: trajectories
#: deviate early and often, exercising checkpoint restores and suffix
#: replay instead of the clean-trajectory shortcut.
JUMPY = NoiseModel(coherence=CoherenceModel(base_t1_ns=300.0))


def _physical(workload="mixed", strategy=Strategy.MIXED_RADIX_CCZ):
    return mixed_physical(f"fastpath-{workload}", strategy=strategy)


# ---------------------------------------------------------------------------
# numerical assumptions and vectorized helpers
# ---------------------------------------------------------------------------


class TestAssumptions:
    def test_bulk_uniforms_equal_scalar_draws(self):
        bulk = np.random.default_rng(42).random(size=500)
        scalar_rng = np.random.default_rng(42)
        scalars = np.array([scalar_rng.random() for _ in range(500)])
        assert np.array_equal(bulk, scalars)

    def test_bulk_draw_advances_stream_like_scalar_draws(self):
        bulk_rng = np.random.default_rng(9)
        scalar_rng = np.random.default_rng(9)
        bulk_rng.random(size=137)
        for _ in range(137):
            scalar_rng.random()
        assert bulk_rng.bit_generator.state == scalar_rng.bit_generator.state

    def test_generator_clone_is_exact_and_independent(self):
        stream = np.random.default_rng(7).spawn(3)[1]
        clone = fastpath_mod._clone_generator(stream)
        probed = clone.random(size=64)
        live = np.array([stream.random() for _ in range(64)])
        assert np.array_equal(probed, live)


class TestVectorizedHelpers:
    def _idle_steps_and_states(self, seed):
        physical = _physical()
        program = cached_compile_program(physical, NoiseModel())
        idles = [s for s in program.steps if isinstance(s, IdleStep)]
        rng = np.random.default_rng(seed)
        dim = int(np.prod(program.dims))
        states = np.array(
            [haar_random_state(dim, rng) for _ in range(7)], dtype=np.complex128
        )
        return idles, states

    def test_batched_populations_match_scalar(self):
        idles, states = self._idle_steps_and_states(0)
        assert idles
        for step in idles:
            batched = device_populations_batch(states, step)
            for row in range(states.shape[0]):
                scalar = device_populations(states[row].copy(), step)
                assert np.array_equal(batched[row], scalar)

    def test_batched_scales_match_scalar(self):
        idles, states = self._idle_steps_and_states(1)
        for step in idles:
            populations = device_populations_batch(states, step)
            batched = no_jump_scales_batch(step, populations)
            for row in range(states.shape[0]):
                scalar = no_jump_scales(step, populations[row])
                if scalar is None:
                    assert np.all(batched[row] == 1.0)
                else:
                    assert np.array_equal(batched[row], scalar)

    def test_no_jump_terms_replicate_draw_decisions(self):
        idles, states = self._idle_steps_and_states(2)
        uniforms = np.random.default_rng(3).random(size=states.shape[0])

        class FixedUniform:
            def __init__(self, value):
                self.value = value

            def random(self):
                return self.value

        for step in idles:
            populations = device_populations_batch(states, step)
            p0, total, consumes = idle_no_jump_terms(step, populations)
            for row in range(states.shape[0]):
                choice = draw_idle_choice(
                    step, populations[row], FixedUniform(uniforms[row])
                )
                if choice is None:
                    assert not consumes[row]
                else:
                    assert consumes[row]
                    no_jump = uniforms[row] * total[row] < p0[row]
                    assert no_jump == (choice == 0)

    def test_scale_tables_precomputed_on_idle_steps(self):
        idles, _ = self._idle_steps_and_states(4)
        for step in idles:
            assert step.weights[0] == 1.0
            assert np.array_equal(
                step.sqrt_weights, np.sqrt(np.array(step.weights))
            )


# ---------------------------------------------------------------------------
# record property: precomputed prefix == step-by-step recomputation
# ---------------------------------------------------------------------------


class TestRecordProperty:
    @pytest.mark.parametrize("seed", (11, 12))
    @pytest.mark.parametrize("strategy", (Strategy.QUBIT_ONLY, Strategy.MIXED_RADIX_CCZ))
    def test_record_matches_explicit_no_jump_evolution(self, seed, strategy):
        circuit = random_logical_circuit(seed, num_qubits=4, num_gates=12)
        physical = compile_circuit(circuit, strategy).physical_circuit
        noise_model = NoiseModel()
        program = cached_compile_program(physical, noise_model)
        dim = int(np.prod(program.dims))
        state = haar_random_state(dim, np.random.default_rng(seed))

        simulator = TrajectorySimulator(noise_model, rng=0, fastpath=True)
        run_fastpath_fidelities(
            physical=physical,
            noise_model=noise_model,
            program=program,
            backend=simulator.backend,
            streams=np.random.default_rng(0).spawn(1),
            sampler=lambda rng: state,
            block_size=None,
        )
        stride = checkpoint_stride(len(program.steps))
        key = fastpath_mod._record_key(program, "numpy", stride, state)
        found = get_record_store().get_many(
            [key], fastpath_mod._bundle_key([key]), draw_schedule(program), stride
        )
        record = found.get(key)
        assert record is not None
        # The prefix is materialized up to the trajectory's first deviation
        # segment (the full program when the trajectory stayed clean); the
        # record must match a step-by-step recomputation with the scalar
        # helpers the slow loop executor uses, over everything it covers.
        assert record.prefix_steps > 0

        current = np.asarray(state, dtype=np.complex128).copy()
        idle_ordinal = 0
        for index, step in enumerate(program.steps[: record.prefix_steps]):
            if isinstance(step, GateStep):
                current = apply_kernel(current, step.kernel, program.dims)
            else:
                populations = device_populations(current, step)
                recorded = record.populations[idle_ordinal]
                assert np.array_equal(recorded[: step.dim], populations)
                assert np.all(recorded[step.dim :] == 0.0)  # exact zero padding
                scales = no_jump_scales(step, populations)
                recorded_scales = record.scales[idle_ordinal]
                assert np.all(recorded_scales[step.dim :] == 1.0)
                if scales is None:
                    assert np.all(recorded_scales == 1.0)
                else:
                    assert np.array_equal(recorded_scales[: step.dim], scales)
                    left, d, right = step.reshape
                    current = (
                        current.reshape(left, d, right) * scales[None, :, None]
                    ).reshape(-1)
                idle_ordinal += 1
            boundary = index + 1
            if boundary < record.prefix_steps and boundary % stride == 0:
                assert np.array_equal(record.checkpoints[boundary], current)
        if record.prefix_steps == len(program.steps):
            assert np.array_equal(record.final, current)
        else:
            assert np.array_equal(record.checkpoints[record.prefix_steps], current)

        # The recorded ideal final equals the slow ideal evolution.
        ideal = simulator.run_ideal(physical, state)
        assert np.array_equal(record.ideal_final, ideal)


# ---------------------------------------------------------------------------
# bit-for-bit equality against the slow paths
# ---------------------------------------------------------------------------


class TestFastpathEquality:
    @pytest.mark.parametrize("noise", ("paper", "jumpy"))
    @pytest.mark.parametrize("batch_size", (None, 3, 16))
    def test_fastpath_matches_slow_loop(self, noise, batch_size):
        physical = _physical()
        model = NoiseModel() if noise == "paper" else JUMPY
        reference = TrajectorySimulator(model, rng=42, fastpath=False).average_fidelity(
            physical, num_trajectories=12
        )
        fast = TrajectorySimulator(model, rng=42, fastpath=True).average_fidelity(
            physical, num_trajectories=12, batch_size=batch_size
        )
        assert fast.fidelities == reference.fidelities
        snapshot = stats()
        assert snapshot["trajectories"] == 12

    @pytest.mark.parametrize("strategy", (Strategy.QUBIT_ONLY, Strategy.FULL_QUQUART))
    def test_fastpath_across_regimes(self, strategy):
        physical = _physical(strategy=strategy)
        reference = TrajectorySimulator(NoiseModel(), rng=5, fastpath=False).average_fidelity(
            physical, num_trajectories=8, batch_size=4
        )
        fast = TrajectorySimulator(NoiseModel(), rng=5, fastpath=True).average_fidelity(
            physical, num_trajectories=8, batch_size=4
        )
        assert fast.fidelities == reference.fidelities

    def test_fastpath_with_workers_matches_single_core(self):
        physical = _physical()
        reference = TrajectorySimulator(JUMPY, rng=9, fastpath=False).average_fidelity(
            physical, num_trajectories=10
        )
        fast = TrajectorySimulator(JUMPY, rng=9, fastpath=True).average_fidelity(
            physical, num_trajectories=10, batch_size=4, workers=2
        )
        assert fast.fidelities == reference.fidelities

    def test_fastpath_fused_equals_unfused(self):
        physical = _physical()
        fused = TrajectorySimulator(NoiseModel(), rng=3, fastpath=True, fuse=True)
        unfused = TrajectorySimulator(NoiseModel(), rng=3, fastpath=True, fuse=False)
        a = fused.average_fidelity(physical, num_trajectories=8, batch_size=4)
        b = unfused.average_fidelity(physical, num_trajectories=8, batch_size=4)
        assert a.fidelities == b.fidelities

    @pytest.mark.parametrize("seed", (21, 22))
    def test_fastpath_on_random_circuits(self, seed):
        circuit = random_logical_circuit(seed, num_qubits=4, num_gates=14)
        physical = compile_circuit(circuit, Strategy.MIXED_RADIX_CCZ).physical_circuit
        reference = TrajectorySimulator(NoiseModel(), rng=seed, fastpath=False).average_fidelity(
            physical, num_trajectories=6, batch_size=3
        )
        fast = TrajectorySimulator(NoiseModel(), rng=seed, fastpath=True).average_fidelity(
            physical, num_trajectories=6, batch_size=3
        )
        assert fast.fidelities == reference.fidelities

    def test_escape_hatch_disables_fastpath(self, monkeypatch):
        physical = _physical()
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        assert not fastpath_enabled(None)
        assert fastpath_enabled(True)  # explicit construction wins
        before = stats()["trajectories"]
        result = TrajectorySimulator(NoiseModel(), rng=4).average_fidelity(
            physical, num_trajectories=4, batch_size=2
        )
        assert stats()["trajectories"] == before  # the fast path never ran
        monkeypatch.delenv("REPRO_NO_FASTPATH")
        assert fastpath_enabled(None)
        enabled = TrajectorySimulator(NoiseModel(), rng=4).average_fidelity(
            physical, num_trajectories=4, batch_size=2
        )
        assert enabled.fidelities == result.fidelities

    def test_noiseless_model_is_all_clean(self):
        physical = _physical()
        model = NoiseModel.noiseless()
        reference = TrajectorySimulator(model, rng=1, fastpath=False).average_fidelity(
            physical, num_trajectories=4
        )
        fast = TrajectorySimulator(model, rng=1, fastpath=True).average_fidelity(
            physical, num_trajectories=4
        )
        assert fast.fidelities == reference.fidelities
        assert stats()["clean"] == 4

    def test_empty_circuit(self):
        circuit = QuantumCircuit(2, name="empty")
        physical = compile_circuit(circuit, Strategy.QUBIT_ONLY).physical_circuit
        reference = TrajectorySimulator(NoiseModel(), rng=0, fastpath=False).average_fidelity(
            physical, num_trajectories=3
        )
        fast = TrajectorySimulator(NoiseModel(), rng=0, fastpath=True).average_fidelity(
            physical, num_trajectories=3
        )
        assert fast.fidelities == reference.fidelities

    def test_custom_fixed_state_sampler_shares_records(self):
        # The standard MCWF case: every trajectory starts from one state, so
        # a single record serves the whole run (and the no-jump prefix is
        # evolved once, not per trajectory).
        physical = _physical()
        program_state = {}

        def fixed_sampler(rng):
            if "state" not in program_state:
                dims = physical.device_dims
                program_state["state"] = haar_random_state(dims, np.random.default_rng(0))
            return program_state["state"]

        reference = TrajectorySimulator(NoiseModel(), rng=2, fastpath=False).average_fidelity(
            physical, num_trajectories=8, initial_state_sampler=fixed_sampler
        )
        fast = TrajectorySimulator(NoiseModel(), rng=2, fastpath=True).average_fidelity(
            physical, num_trajectories=8, batch_size=4, initial_state_sampler=fixed_sampler
        )
        assert fast.fidelities == reference.fidelities
        snapshot = stats()
        # One shared state -> one record built (per execution mode), not one
        # per trajectory: the no-jump prefix is evolved once and replayed.
        assert snapshot["records_built"] <= 2
        assert snapshot["record_memory_hits"] > 0


# ---------------------------------------------------------------------------
# record cache behavior
# ---------------------------------------------------------------------------


class TestRecordCache:
    def test_disk_round_trip_hits_and_matches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        # 6 trajectories sit below the default publication threshold.
        monkeypatch.setenv("REPRO_FASTPATH_MIN_TRAJ", "1")
        reset_cache()
        physical = _physical()
        first = TrajectorySimulator(JUMPY, rng=6, fastpath=True).average_fidelity(
            physical, num_trajectories=6, batch_size=3
        )
        before = stats()["record_disk_hits"]
        get_record_store().clear_memory()
        second = TrajectorySimulator(JUMPY, rng=6, fastpath=True).average_fidelity(
            physical, num_trajectories=6, batch_size=3
        )
        assert second.fidelities == first.fidelities
        assert stats()["record_disk_hits"] - before >= 6
        reset_cache()

    def test_memory_hits_within_process(self):
        physical = _physical()
        TrajectorySimulator(NoiseModel(), rng=8, fastpath=True).average_fidelity(
            physical, num_trajectories=4
        )
        before = stats()["record_memory_hits"]
        TrajectorySimulator(NoiseModel(), rng=8, fastpath=True).average_fidelity(
            physical, num_trajectories=4, batch_size=2
        )
        assert stats()["record_memory_hits"] - before >= 4

    def test_records_never_touch_compile_log(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_cache()
        physical = _physical()
        program = cached_compile_program(physical, NoiseModel())
        assert program is not None
        log = tmp_path / "cache" / "compile-log.txt"
        lines_before = len(log.read_text().splitlines()) if log.exists() else 0
        TrajectorySimulator(NoiseModel(), rng=1, fastpath=True).average_fidelity(
            physical, num_trajectories=3
        )
        lines_after = len(log.read_text().splitlines()) if log.exists() else 0
        assert lines_after == lines_before
        reset_cache()

    def test_store_byte_budget_evicts(self):
        store = RecordStore(max_bytes=1)
        a = NoJumpRecord(stride=8, ideal_final=np.zeros(64, dtype=np.complex128))
        b = NoJumpRecord(stride=8, ideal_final=np.zeros(64, dtype=np.complex128))
        store._memory_put("a", a)
        store._memory_put("b", b)
        assert "a" not in store._memory and "b" in store._memory

    def test_stale_or_mismatched_records_are_rejected(self):
        physical = _physical()
        program = cached_compile_program(physical, NoiseModel())
        schedule = draw_schedule(program)
        stride = checkpoint_stride(len(program.steps))
        assert not NoJumpRecord(stride=stride + 1).valid_for(schedule, stride)
        missing_ideal = NoJumpRecord(stride=stride)
        assert not missing_ideal.valid_for(schedule, stride)
        misaligned = NoJumpRecord(
            stride=stride,
            prefix_steps=1 if stride > 1 else len(program.steps) + 1,
            ideal_final=np.zeros(4, dtype=np.complex128),
        )
        assert not misaligned.valid_for(schedule, stride)

    def test_thinned_partial_record_extension_is_safe(self, tmp_path, monkeypatch):
        # Disk bundles thin checkpoints to a byte budget; a partial record
        # whose resume checkpoint was dropped must roll coverage back (the
        # truncate-on-load path) instead of crashing, and trajectories that
        # need the prefix beyond the record's coverage must still match the
        # slow path bit for bit.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_cache()
        physical = _physical()
        noise_model = NoiseModel()
        program = cached_compile_program(physical, noise_model)
        schedule = draw_schedule(program)
        stride = checkpoint_stride(len(program.steps))
        assert stride < len(program.steps)  # the program really has >1 segment
        state = haar_random_state(program.dims, np.random.default_rng(5))

        def fixed_sampler(rng):
            return state

        reference = TrajectorySimulator(noise_model, rng=2, fastpath=False).average_fidelity(
            physical, num_trajectories=4, initial_state_sampler=fixed_sampler
        )
        # Build the full record, then publish the worst-case thinned partial
        # copy: coverage ends mid-program and every checkpoint is gone.
        TrajectorySimulator(noise_model, rng=1, fastpath=True).average_fidelity(
            physical, num_trajectories=1, initial_state_sampler=fixed_sampler
        )
        key = fastpath_mod._record_key(program, "numpy", stride, state)
        record = get_record_store().get_many(
            [key], fastpath_mod._bundle_key([key]), schedule, stride
        )[key]
        covered = int(schedule.idles_before[stride])
        partial = NoJumpRecord(
            stride=stride,
            prefix_steps=stride,
            populations=record.populations[:covered] if covered else None,
            scales=record.scales[:covered] if covered else None,
            checkpoints={},
            final=None,
            ideal_final=record.ideal_final,
        )
        assert partial.valid_for(schedule, stride)  # checkpoints are optional
        get_record_store().clear_memory()
        get_record_store().put_many([key], [partial], fastpath_mod._bundle_key([key]))
        get_record_store().clear_memory()

        fast = TrajectorySimulator(noise_model, rng=2, fastpath=True).average_fidelity(
            physical, num_trajectories=4, batch_size=2, initial_state_sampler=fixed_sampler
        )
        assert fast.fidelities == reference.fidelities
        reset_cache()

    def test_store_byte_accounting_tracks_inplace_growth(self):
        store = RecordStore(max_bytes=10**9)
        record = NoJumpRecord(stride=8, ideal_final=np.zeros(8, dtype=np.complex128))
        store._memory_put("k", record)
        first = store._bytes
        record.checkpoints[8] = np.zeros(1024, dtype=np.complex128)  # grows in place
        store._memory_put("k", record)  # a re-put must re-measure
        assert store._bytes == first + record.checkpoints[8].nbytes

    def test_stride_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH_STRIDE", "5")
        assert checkpoint_stride(100) == 5
        monkeypatch.setenv("REPRO_FASTPATH_STRIDE", "0")
        with pytest.raises(ValueError):
            checkpoint_stride(100)
        monkeypatch.delenv("REPRO_FASTPATH_STRIDE")
        assert checkpoint_stride(0) == 1
        assert checkpoint_stride(1000) == 125

    def test_stride_change_still_bitwise_equal(self, monkeypatch):
        physical = _physical()
        reference = TrajectorySimulator(JUMPY, rng=13, fastpath=False).average_fidelity(
            physical, num_trajectories=6
        )
        monkeypatch.setenv("REPRO_FASTPATH_STRIDE", "3")
        fast = TrajectorySimulator(JUMPY, rng=13, fastpath=True).average_fidelity(
            physical, num_trajectories=6, batch_size=3
        )
        assert fast.fidelities == reference.fidelities


# ---------------------------------------------------------------------------
# sweep integration: default wiring and kill-and-resume sharding
# ---------------------------------------------------------------------------


class TestSweepIntegration:
    def test_sweep_uses_fastpath_by_default(self):
        points = fidelity_sweep_points(
            workloads=("cnu",), sizes=(5,), num_trajectories=2, rng=0
        )[:1]
        before = stats()["trajectories"]
        sweep_mod.evaluate_point(points[0])
        assert stats()["trajectories"] - before == 2

    def test_sweep_fastpath_vs_escape_hatch_csv_identical(self, tmp_path, monkeypatch):
        points = fidelity_sweep_points(
            workloads=("cnu",), sizes=(5,), num_trajectories=3, rng=0
        )
        fast_csv = tmp_path / "fast.csv"
        SweepRunner(max_workers=1, csv_path=fast_csv).run(points)
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        slow_csv = tmp_path / "slow.csv"
        SweepRunner(max_workers=1, csv_path=slow_csv).run(points)
        assert fast_csv.read_bytes() == slow_csv.read_bytes()

    def test_killed_shard_resumes_with_fastpath_on(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        # 3 trajectories per point sit below the default publication threshold.
        monkeypatch.setenv("REPRO_FASTPATH_MIN_TRAJ", "1")
        reset_cache()
        assert fastpath_enabled(None)
        points = fidelity_sweep_points(
            workloads=("cnu",), sizes=(5,), num_trajectories=3, rng=0
        )[:4]
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        unsharded_csv = out_dir / "unsharded.csv"
        SweepRunner(max_workers=1, csv_path=unsharded_csv).run(points)

        directory = tmp_path / "plan"
        plan = ShardPlanner(1).plan(points)
        save_plan(plan, directory)

        real_evaluate = sweep_mod.evaluate_point
        calls = {"n": 0}

        def dying_evaluate(point):
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            calls["n"] += 1
            return real_evaluate(point)

        monkeypatch.setattr(sweep_mod, "evaluate_point", dying_evaluate)
        with pytest.raises(KeyboardInterrupt):
            run_shard(plan, 0, directory, runner=SweepRunner(max_workers=1))
        monkeypatch.setattr(sweep_mod, "evaluate_point", real_evaluate)

        # Resume like a fresh host: both cache fronts dropped, so the
        # resumed shard reuses compilations *and* checkpoint records
        # through the disk layer only.
        reset_cache()
        get_record_store().clear_memory()
        disk_hits_before = stats()["record_disk_hits"]
        report = run_shard(plan, 0, directory, runner=SweepRunner(max_workers=1))
        assert report.ok
        assert report.num_resumed == 2
        assert stats()["record_disk_hits"] > disk_hits_before

        merged = merge_shards(directory)
        assert merged.csv_path.read_bytes() == unsharded_csv.read_bytes()
        reset_cache()


class TestPublicationGate:
    """REPRO_FASTPATH_MIN_TRAJ: small cold runs skip the disk write tax.

    The gate must only skip the *disk* layer — the in-process memory front
    keeps serving records (so intra-process reuse is untouched) and the
    fidelities never change either way.
    """

    def test_small_runs_skip_disk_publication(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_cache()
        physical = _physical()
        skipped_before = stats()["publishes_skipped"]
        first = TrajectorySimulator(JUMPY, rng=6, fastpath=True).average_fidelity(
            physical, num_trajectories=4, batch_size=2
        )
        assert stats()["publishes_skipped"] > skipped_before
        # Nothing reached the disk layer: after dropping the memory front, a
        # rerun recomputes (no disk hits) yet reproduces the same bits.
        get_record_store().clear_memory()
        disk_hits_before = stats()["record_disk_hits"]
        second = TrajectorySimulator(JUMPY, rng=6, fastpath=True).average_fidelity(
            physical, num_trajectories=4, batch_size=2
        )
        assert second.fidelities == first.fidelities
        assert stats()["record_disk_hits"] == disk_hits_before
        reset_cache()

    def test_memory_front_still_serves_small_runs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_cache()
        physical = _physical()
        TrajectorySimulator(NoiseModel(), rng=8, fastpath=True).average_fidelity(
            physical, num_trajectories=4
        )
        before = stats()["record_memory_hits"]
        TrajectorySimulator(NoiseModel(), rng=8, fastpath=True).average_fidelity(
            physical, num_trajectories=4, batch_size=2
        )
        assert stats()["record_memory_hits"] - before >= 4
        reset_cache()

    def test_threshold_is_configurable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_FASTPATH_MIN_TRAJ", "4")
        reset_cache()
        physical = _physical()
        TrajectorySimulator(JUMPY, rng=6, fastpath=True).average_fidelity(
            physical, num_trajectories=4, batch_size=2
        )
        get_record_store().clear_memory()
        disk_hits_before = stats()["record_disk_hits"]
        TrajectorySimulator(JUMPY, rng=6, fastpath=True).average_fidelity(
            physical, num_trajectories=4, batch_size=2
        )
        assert stats()["record_disk_hits"] > disk_hits_before
        reset_cache()

    def test_negative_threshold_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH_MIN_TRAJ", "-1")
        with pytest.raises(ValueError, match="REPRO_FASTPATH_MIN_TRAJ"):
            fastpath_mod.min_publish_trajectories()
