"""Unit tests for random state / unitary sampling."""

import numpy as np
import pytest

from repro.qudit.random import haar_random_state, haar_random_unitary, random_product_state


class TestHaarRandom:
    def test_state_is_normalised(self, rng):
        state = haar_random_state((4, 2), rng)
        assert np.linalg.norm(state) == pytest.approx(1.0)
        assert state.shape == (8,)

    def test_state_accepts_integer_dimension(self, rng):
        state = haar_random_state(16, rng)
        assert state.shape == (16,)

    def test_unitary_is_unitary(self, rng):
        unitary = haar_random_unitary(4, rng)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(4), atol=1e-10)

    def test_reproducible_with_seed(self):
        a = haar_random_state(8, 42)
        b = haar_random_state(8, 42)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = haar_random_state(8, 1)
        b = haar_random_state(8, 2)
        assert not np.allclose(a, b)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            haar_random_unitary(0)


class TestProductState:
    def test_product_state_norm(self, rng):
        state = random_product_state((4, 2, 2), rng)
        assert np.linalg.norm(state) == pytest.approx(1.0)
        assert state.shape == (16,)

    def test_product_state_has_no_entanglement(self, rng):
        state = random_product_state((2, 2), rng).reshape(2, 2)
        # A product state has a rank-1 Schmidt decomposition.
        singular_values = np.linalg.svd(state, compute_uv=False)
        assert singular_values[1] == pytest.approx(0.0, abs=1e-10)
