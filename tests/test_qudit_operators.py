"""Unit tests for generalized qudit operators."""

import numpy as np
import pytest

from repro.qudit.operators import (
    amplitude_damping_kraus,
    generalized_pauli_basis,
    generalized_x,
    generalized_z,
    idle_decay_probabilities,
    matrix_unit,
    qudit_identity,
)


class TestGeneralizedPaulis:
    def test_x_reduces_to_pauli_x_for_qubits(self):
        expected = np.array([[0, 1], [1, 0]], dtype=complex)
        assert np.allclose(generalized_x(2), expected)

    def test_z_reduces_to_pauli_z_for_qubits(self):
        expected = np.diag([1, -1]).astype(complex)
        assert np.allclose(generalized_z(2), expected)

    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_x_is_cyclic_shift(self, dim):
        x = generalized_x(dim)
        for level in range(dim):
            vec = np.zeros(dim)
            vec[level] = 1.0
            shifted = x @ vec
            assert shifted[(level + 1) % dim] == pytest.approx(1.0)

    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_x_to_the_d_is_identity(self, dim):
        x = generalized_x(dim)
        assert np.allclose(np.linalg.matrix_power(x, dim), np.eye(dim))

    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_z_to_the_d_is_identity(self, dim):
        z = generalized_z(dim)
        assert np.allclose(np.linalg.matrix_power(z, dim), np.eye(dim))

    @pytest.mark.parametrize("dim", [2, 4])
    def test_operators_are_unitary(self, dim):
        for op in generalized_pauli_basis(dim):
            assert np.allclose(op @ op.conj().T, np.eye(dim))

    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_basis_size(self, dim):
        assert len(generalized_pauli_basis(dim)) == dim * dim - 1
        assert len(generalized_pauli_basis(dim, include_identity=True)) == dim * dim

    def test_basis_is_orthogonal_under_trace(self):
        basis = generalized_pauli_basis(4, include_identity=True)
        gram = np.array([[np.trace(a.conj().T @ b) for b in basis] for a in basis])
        assert np.allclose(gram, 4 * np.eye(16), atol=1e-10)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            generalized_x(1)
        with pytest.raises(ValueError):
            generalized_z(1)


class TestAmplitudeDamping:
    def test_kraus_completeness(self):
        kraus = amplitude_damping_kraus(4, [0.1, 0.2, 0.3])
        total = sum(k.conj().T @ k for k in kraus)
        assert np.allclose(total, np.eye(4))

    def test_qubit_case_matches_textbook(self):
        lam = 0.25
        k0, k1 = amplitude_damping_kraus(2, [lam])
        assert np.allclose(k0, np.diag([1.0, np.sqrt(1 - lam)]))
        assert k1[0, 1] == pytest.approx(np.sqrt(lam))

    def test_wrong_number_of_probabilities(self):
        with pytest.raises(ValueError):
            amplitude_damping_kraus(4, [0.1, 0.2])

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            amplitude_damping_kraus(2, [1.5])

    def test_idle_decay_probabilities_scaling(self):
        probs = idle_decay_probabilities(4, duration=100.0, t1=1000.0)
        assert len(probs) == 3
        # Higher levels decay faster.
        assert probs[0] < probs[1] < probs[2]
        assert probs[0] == pytest.approx(1 - np.exp(-0.1))

    def test_idle_decay_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            idle_decay_probabilities(4, -1.0, 100.0)
        with pytest.raises(ValueError):
            idle_decay_probabilities(4, 1.0, 0.0)


class TestSmallHelpers:
    def test_identity(self):
        assert np.allclose(qudit_identity(3), np.eye(3))

    def test_matrix_unit(self):
        unit = matrix_unit(0, 2, 4)
        assert unit[0, 2] == 1.0
        assert np.count_nonzero(unit) == 1

    def test_matrix_unit_bounds(self):
        with pytest.raises(ValueError):
            matrix_unit(4, 0, 4)
