"""Unit tests for the optimal-control substrate (Sections 2.3 and 3.3)."""

import numpy as np
import pytest

from repro.circuits.library import gate_unitary
from repro.pulse.calibration import (
    TABLE1_GROUPS,
    calibrated_duration,
    logical_target_for_label,
    table1_durations,
    table2_durations,
)
from repro.pulse.grape import GrapeOptimizer
from repro.pulse.hamiltonian import TransmonSystem
from repro.pulse.pulses import PiecewiseConstantPulse
from repro.pulse.synthesis import PulseSynthesizer


class TestTransmonSystem:
    def test_dimensions(self):
        system = TransmonSystem(num_transmons=2, levels_per_transmon=3, logical_levels=2)
        assert system.hilbert_dimension == 9
        assert system.logical_dimension == 4
        assert system.dims == (3, 3)

    def test_drift_is_hermitian(self):
        system = TransmonSystem(num_transmons=2, levels_per_transmon=4, logical_levels=2)
        drift = system.drift_hamiltonian()
        assert np.allclose(drift, drift.conj().T)

    def test_controls_are_hermitian(self):
        system = TransmonSystem(num_transmons=1, levels_per_transmon=4, logical_levels=4)
        for control in system.control_operators():
            assert np.allclose(control, control.conj().T)
        assert len(system.control_operators()) == 2

    def test_anharmonicity_sets_level_spacing(self):
        system = TransmonSystem(num_transmons=1, levels_per_transmon=3, logical_levels=2)
        drift = system.drift_hamiltonian()
        # In the rotating frame of transmon 1 the |1> level has zero energy
        # and the |2> level sits at the anharmonicity.
        assert drift[1, 1] == pytest.approx(0.0)
        assert drift[2, 2] == pytest.approx(2 * np.pi * (-0.330), rel=1e-6)

    def test_logical_projector_excludes_guard_levels(self):
        system = TransmonSystem(num_transmons=1, levels_per_transmon=5, logical_levels=4)
        iso = system.logical_projector()
        assert iso.shape == (5, 4)
        guard = system.guard_projector()
        assert np.trace(guard).real == pytest.approx(1.0)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            TransmonSystem(num_transmons=4)
        with pytest.raises(ValueError):
            TransmonSystem(num_transmons=1, levels_per_transmon=2, logical_levels=4)


class TestPiecewiseConstantPulse:
    def test_shape_and_segment_duration(self):
        pulse = PiecewiseConstantPulse(np.zeros((2, 10)), duration_ns=50.0)
        assert pulse.num_controls == 2
        assert pulse.num_segments == 10
        assert pulse.segment_duration_ns == pytest.approx(5.0)

    def test_sampling(self):
        pulse = PiecewiseConstantPulse(np.array([[1.0, 2.0, 3.0]]), duration_ns=30.0)
        samples = pulse.sample(np.array([0.0, 15.0, 29.9, 35.0]))
        assert samples[0].tolist() == [1.0, 2.0, 3.0, 3.0]

    def test_clipping(self):
        pulse = PiecewiseConstantPulse(np.array([[10.0, -10.0]]), 10.0, max_amplitude=1.0)
        assert pulse.exceeds_bound()
        clipped = pulse.clipped()
        assert not clipped.exceeds_bound()
        assert np.all(np.abs(clipped.amplitudes) <= 1.0)

    def test_random_respects_bound(self, rng):
        pulse = PiecewiseConstantPulse.random(2, 8, 40.0, max_amplitude=0.3, rng=rng)
        assert not pulse.exceeds_bound()
        assert pulse.energy() > 0.0

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            PiecewiseConstantPulse(np.zeros((1, 4)), duration_ns=0.0)


class TestGrapeAndSynthesis:
    def test_x_gate_reaches_target_fidelity(self):
        system = TransmonSystem(num_transmons=1, levels_per_transmon=4, logical_levels=2)
        synthesizer = PulseSynthesizer(system, maxiter=200, rng=0)
        result = synthesizer.synthesize_at_duration(gate_unitary("X"), duration_ns=35.0)
        assert result.fidelity > 0.999
        assert result.leakage < 1e-2
        assert not result.pulse.exceeds_bound()

    def test_identity_gate_with_zero_pulse(self):
        system = TransmonSystem(num_transmons=1, levels_per_transmon=4, logical_levels=2)
        optimizer = GrapeOptimizer(system)
        pulse = PiecewiseConstantPulse.zeros(2, 8, 10.0)
        propagator = optimizer.propagator(pulse)
        fidelity = optimizer.fidelity(propagator, np.eye(2))
        assert fidelity > 0.999

    def test_target_shape_validation(self):
        system = TransmonSystem(num_transmons=1, levels_per_transmon=4, logical_levels=2)
        optimizer = GrapeOptimizer(system)
        with pytest.raises(ValueError):
            optimizer.optimize(np.eye(4), duration_ns=20.0)

    def test_hh_ququart_gate_synthesis(self):
        system = TransmonSystem(num_transmons=1, levels_per_transmon=5, logical_levels=4)
        synthesizer = PulseSynthesizer(system, maxiter=250, rng=1)
        target = np.kron(gate_unitary("H"), gate_unitary("H"))
        result = synthesizer.synthesize_at_duration(target, duration_ns=90.0)
        assert result.fidelity > 0.99

    def test_duration_search_shrinks(self):
        system = TransmonSystem(num_transmons=1, levels_per_transmon=3, logical_levels=2)
        synthesizer = PulseSynthesizer(system, maxiter=120, rng=2, fidelity_target=0.999)
        search = synthesizer.minimize_duration(
            gate_unitary("X"), initial_duration_ns=60.0, max_rounds=3
        )
        assert search.achieved_target
        assert search.duration_ns < 60.0
        assert len(search.attempts) >= 2


class TestCalibration:
    def test_tables_round_trip(self):
        assert table1_durations()["U"] == 35.0
        assert table2_durations()["CCZ01q"] == 264.0
        assert calibrated_duration("CX2") == 251.0
        assert calibrated_duration("CSWAP1,01") == 432.0
        with pytest.raises(KeyError):
            calibrated_duration("NOPE")

    def test_groups_cover_table1(self):
        labels = {label for group in TABLE1_GROUPS.values() for label in group}
        assert labels == set(table1_durations())

    def test_logical_targets_are_unitary(self):
        for label in ["U", "U01", "CX0", "SWAP_in", "CX2", "CXq0", "CX0q", "SWAPq1", "ENC"]:
            matrix, dims = logical_target_for_label(label)
            dim = int(np.prod(dims))
            assert matrix.shape == (dim, dim)
            assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)

    def test_unknown_target_label(self):
        with pytest.raises(KeyError):
            logical_target_for_label("CCX01q")
