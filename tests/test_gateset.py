"""Unit tests for the calibrated gate set (Tables 1 and 2)."""

import pytest

from repro.core.gateset import (
    PAPER_TABLE1_DURATIONS_NS,
    PAPER_TABLE2_DURATIONS_NS,
    ErrorModel,
    GateClass,
    GateSet,
)


class TestPaperTables:
    def test_table1_headline_entries(self):
        assert PAPER_TABLE1_DURATIONS_NS["U"] == 35.0
        assert PAPER_TABLE1_DURATIONS_NS["CX2"] == 251.0
        assert PAPER_TABLE1_DURATIONS_NS["iToffoli3"] == 912.0
        assert PAPER_TABLE1_DURATIONS_NS["ENC"] == 608.0
        assert PAPER_TABLE1_DURATIONS_NS["SWAP11"] == 964.0

    def test_table2_headline_entries(self):
        assert PAPER_TABLE2_DURATIONS_NS["CCX01q"] == 412.0
        assert PAPER_TABLE2_DURATIONS_NS["CCZ01q"] == 264.0
        assert PAPER_TABLE2_DURATIONS_NS["CCZ01,0"] == 232.0
        assert PAPER_TABLE2_DURATIONS_NS["CSWAP1,01"] == 432.0

    def test_internal_gates_are_faster_than_qubit_gates(self):
        # "gates are 5x faster ... than qubit-only schemes" (Section 3.4).
        assert PAPER_TABLE1_DURATIONS_NS["CX0"] * 3 < PAPER_TABLE1_DURATIONS_NS["CX2"]

    def test_controls_together_toffoli_is_fastest_ccx(self):
        mixed_ccx = [v for k, v in PAPER_TABLE2_DURATIONS_NS.items() if k.startswith("CCX") and "," not in k]
        assert PAPER_TABLE2_DURATIONS_NS["CCX01q"] == min(mixed_ccx)


class TestErrorModel:
    def test_default_rates_follow_fidelity_targets(self):
        model = ErrorModel()
        assert model.error_rate(GateClass.SINGLE_QUBIT) == pytest.approx(0.001)
        assert model.error_rate(GateClass.QUBIT_TWO_Q) == pytest.approx(0.01)
        assert model.error_rate(GateClass.MIXED_RADIX_THREE_Q) == pytest.approx(0.01)
        assert model.error_rate(GateClass.QUBIT_ITOFFOLI) == pytest.approx(0.01)

    def test_ququart_error_factor_only_hits_higher_level_gates(self):
        model = ErrorModel(ququart_error_factor=4.0)
        assert model.error_rate(GateClass.QUBIT_TWO_Q) == pytest.approx(0.01)
        assert model.error_rate(GateClass.FULL_QUQUART_TWO_Q) == pytest.approx(0.04)
        assert model.error_rate(GateClass.SINGLE_QUQUART) == pytest.approx(0.004)

    def test_error_rate_is_capped(self):
        model = ErrorModel(ququart_error_factor=1e6)
        assert model.error_rate(GateClass.ENCODE) < 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ErrorModel(two_device_error=1.5)
        with pytest.raises(ValueError):
            ErrorModel(ququart_error_factor=0.0)

    def test_with_factor_returns_copy(self):
        model = ErrorModel()
        scaled = model.with_ququart_error_factor(3.0)
        assert scaled.ququart_error_factor == 3.0
        assert model.ququart_error_factor == 1.0


class TestGateClass:
    def test_higher_level_classification(self):
        assert GateClass.MIXED_RADIX_TWO_Q.uses_higher_levels
        assert GateClass.ENCODE.uses_higher_levels
        assert not GateClass.QUBIT_TWO_Q.uses_higher_levels
        assert not GateClass.QUBIT_ITOFFOLI.uses_higher_levels

    def test_single_device_classification(self):
        assert GateClass.INTERNAL.is_single_device
        assert not GateClass.FULL_QUQUART_THREE_Q.is_single_device


class TestGateSetLookups:
    @pytest.fixture
    def gate_set(self) -> GateSet:
        return GateSet()

    def test_single_qubit_lookup(self, gate_set):
        assert gate_set.single_qubit(encoded=False) == (35.0, GateClass.SINGLE_QUBIT)
        assert gate_set.single_qubit(encoded=True, slot=0) == (87.0, GateClass.SINGLE_QUQUART)
        assert gate_set.single_qubit(encoded=True, slot=1) == (66.0, GateClass.SINGLE_QUQUART)
        assert gate_set.single_qubit(encoded=True, both=True) == (86.0, GateClass.SINGLE_QUQUART)

    def test_single_qubit_requires_slot_when_encoded(self, gate_set):
        with pytest.raises(ValueError):
            gate_set.single_qubit(encoded=True, slot=None)

    def test_internal_lookup(self, gate_set):
        assert gate_set.internal_two_qubit("SWAP")[0] == 78.0
        assert gate_set.internal_cx(0)[0] == 83.0
        assert gate_set.internal_cx(1)[0] == 84.0
        with pytest.raises(ValueError):
            gate_set.internal_two_qubit("ITOFFOLI")

    def test_qubit_two_qubit_lookup(self, gate_set):
        assert gate_set.qubit_two_qubit("CX")[0] == 251.0
        assert gate_set.qubit_two_qubit("CSDG")[0] == 126.0
        assert gate_set.qubit_two_qubit("SWAP")[0] == 504.0

    def test_mixed_radix_lookup_direction_matters(self, gate_set):
        ququart_controls, _ = gate_set.mixed_radix_two_qubit("CX", 0, ququart_is_control=True)
        qubit_controls, _ = gate_set.mixed_radix_two_qubit("CX", 0, ququart_is_control=False)
        assert ququart_controls == 560.0
        assert qubit_controls == 880.0

    def test_full_ququart_lookup_symmetries(self, gate_set):
        assert gate_set.full_ququart_two_qubit("CZ", 1, 0)[0] == 488.0
        assert gate_set.full_ququart_two_qubit("SWAP", 1, 0)[0] == 892.0
        assert gate_set.full_ququart_two_qubit("CX", 1, 0)[0] == 700.0

    def test_three_qubit_lookup(self, gate_set):
        assert gate_set.mixed_radix_three_qubit("CCZ01q")[0] == 264.0
        assert gate_set.full_ququart_three_qubit("CCX01,1")[0] == 552.0
        with pytest.raises(ValueError):
            gate_set.mixed_radix_three_qubit("CCX01,1")
        with pytest.raises(ValueError):
            gate_set.full_ququart_three_qubit("CCZ01q")

    def test_error_factor_propagates_through_gate_set(self):
        gate_set = GateSet(error_model=ErrorModel(ququart_error_factor=2.0))
        assert gate_set.error_rate(GateClass.MIXED_RADIX_TWO_Q) == pytest.approx(0.02)
        assert gate_set.fidelity(GateClass.QUBIT_TWO_Q) == pytest.approx(0.99)

    def test_with_error_model_copy(self, gate_set):
        scaled = gate_set.with_error_model(ErrorModel(ququart_error_factor=5.0))
        assert scaled.error_rate(GateClass.ENCODE) == pytest.approx(0.05)
        assert gate_set.error_rate(GateClass.ENCODE) == pytest.approx(0.01)
