"""Crash-consistency property harness over the durable-storage layer.

The property: for every injected crash/fault point during a durable
operation (cache put, record-bundle publish, manifest write, lease
claim/reclaim), a rerun after the crash converges to output **byte
identical** to a fault-free run — with corrupt artifacts quarantined
(reason-recorded), never honoured and never silently deleted.

The harness enumerates crash points mechanically: a plan with one
``crash``-at-the-*i*-th-operation rule is installed, the operation runs
until it dies (or survives, which ends the enumeration because every
point has been visited), the plan is cleared, and the operation reruns to
completion.  Every scenario asserts at least two crash points actually
fired, so a silent change to the storage layer's operation count cannot
hollow the property out.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import pytest

from repro import faults
from repro.core import storage
from repro.core.compile_cache import CompileCache
from repro.experiments.scheduler import LeaseCoordinator, WorkerManifest, plan_job, save_job
from repro.noise.fastpath import get_record_store
from helpers import mini_points


def crash_rule_at(index: int) -> faults.FaultPlan:
    """A plan that kills the process at the ``index``-th durable operation."""
    return faults.FaultPlan([faults.FaultRule(op="*", path="*", kind="crash", at=index)])


def enumerate_crashes(operation, recover, max_points: int = 32) -> int:
    """Crash ``operation`` at every durable-op index; ``recover`` after each.

    Returns how many crash points actually fired.  The enumeration stops at
    the first index the operation survives (all points visited); hitting
    ``max_points`` instead means the operation's durable-op count exploded,
    which is itself a failure.
    """
    fired = 0
    for index in range(max_points):
        plan = crash_rule_at(index)
        crashed = False
        with faults.fault_plan(plan):
            try:
                operation()
            except faults.SimulatedCrash:
                crashed = True
        if not crashed:
            return fired
        fired += 1
        recover()
    pytest.fail(f"operation still crashing after {max_points} injected points")


class TestCachePutCrashConsistency:
    def test_every_crash_point_converges_to_fault_free_bytes(self, tmp_path):
        reference_cache = CompileCache(directory=tmp_path / "ref")
        reference_cache.put("feed" * 16, {"artifact": list(range(8))})
        reference = reference_cache.path_for("feed" * 16).read_bytes()

        cache = CompileCache(directory=tmp_path / "chaos")
        path = cache.path_for("feed" * 16)

        def operation():
            cache.put("feed" * 16, {"artifact": list(range(8))})

        def recover():
            # A crash mid-put must leave the destination either absent or
            # fully published — never torn, never a stray temp honoured.
            if path.exists():
                assert path.read_bytes() == reference
            operation()
            assert path.read_bytes() == reference
            cache.clear_memory()
            assert cache.get("feed" * 16) == {"artifact": list(range(8))}

        fired = enumerate_crashes(operation, recover)
        assert fired >= 2  # tmp-write and publish-rename at minimum

    def test_torn_cache_entry_is_quarantined_then_recomputed(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        key = "feed" * 16
        plan = faults.FaultPlan(
            [faults.FaultRule(op="write", path="*.pkl", kind="torn", at=0, arg=7)]
        )
        with faults.fault_plan(plan):
            cache.put(key, {"artifact": 1})
        cache.clear_memory()

        computed = []
        value = cache.get_or_create(key, lambda: computed.append(1) or {"artifact": 1})
        assert value == {"artifact": 1}
        assert computed == [1]  # the torn entry triggered a clean recompute
        quarantined = tmp_path / "quarantine" / f"{key}.pkl"
        assert len(quarantined.read_bytes()) == 7
        assert quarantined.with_name(f"{key}.pkl.reason.json").exists()
        # The recompute republished a healthy artifact.
        assert pickle.loads(cache.path_for(key).read_bytes()) == {"artifact": 1}
        # And the compile log stays a compilation-only audit: "pid key" lines.
        log_lines = (tmp_path / "compile-log.txt").read_text().splitlines()
        assert [line.split()[1] for line in log_lines] == [key]


class TestRecordBundleCrashConsistency:
    def test_bundle_publish_crash_points_converge(self, tmp_path, monkeypatch):
        bundle = {"k1": [1.0, 2.0], "k2": [3.0]}
        reference_cache = CompileCache(directory=tmp_path / "ref")
        reference_cache.disk_put("bundle" * 10 + "abcd", bundle)
        reference = reference_cache.path_for("bundle" * 10 + "abcd").read_bytes()

        cache = CompileCache(directory=tmp_path / "chaos")
        path = cache.path_for("bundle" * 10 + "abcd")

        def operation():
            cache.disk_put("bundle" * 10 + "abcd", bundle)

        def recover():
            if path.exists():
                assert path.read_bytes() == reference
            operation()
            assert path.read_bytes() == reference

        assert enumerate_crashes(operation, recover) >= 2

    def test_non_dict_bundle_is_quarantined_on_read(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.core.compile_cache import get_cache, reset_cache

        reset_cache()
        bundle_key = "feed" * 16
        get_cache().disk_put(bundle_key, ["not", "a", "record", "dict"])
        found = get_record_store().get_many(["k1"], bundle_key, None, 0)
        assert found == {}
        quarantined = tmp_path / "quarantine" / f"{bundle_key}.pkl"
        assert quarantined.exists()
        reason = json.loads(quarantined.with_name(f"{bundle_key}.pkl.reason.json").read_text())
        assert "record dict" in reason["reason"]
        reset_cache()


class TestManifestWriteCrashConsistency:
    def test_worker_manifest_crash_points_converge(self, tmp_path):
        manifest = WorkerManifest(
            worker_id="w0",
            job_fingerprint="f" * 64,
            completed={"0": "k" * 64},
        )
        reference_dir = tmp_path / "ref"
        manifest.save(reference_dir)
        reference = (reference_dir / "manifest.json").read_bytes()

        chaos_dir = tmp_path / "chaos"
        path = chaos_dir / "manifest.json"

        def operation():
            manifest.save(chaos_dir)

        def recover():
            if path.exists():
                assert path.read_bytes() == reference
            operation()
            assert path.read_bytes() == reference
            assert WorkerManifest.load(chaos_dir).completed == {"0": "k" * 64}

        assert enumerate_crashes(operation, recover) >= 2


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLeaseCrashConsistency:
    @pytest.fixture()
    def job_dir(self, tmp_path):
        directory = tmp_path / "job"
        save_job(plan_job(mini_points(num_trajectories=2)), directory)
        return directory

    def test_claim_crash_points_always_leave_point_claimable(self, job_dir):
        clock = FakeClock()
        lease_path = job_dir / "leases" / "00000.lease"

        def operation():
            coordinator = LeaseCoordinator(job_dir, worker_id="crashy", ttl=10.0, clock=clock)
            assert coordinator.acquire() is not None

        def recover():
            # The canonical lease name is either absent or a fully valid
            # claim — a crash mid-claim never publishes partial bytes.
            assert not lease_path.exists()
            operation()
            lease = json.loads(lease_path.read_text())
            assert lease["index"] == 0
            lease_path.unlink()  # release for the next enumeration round

        fired = enumerate_crashes(operation, recover)
        assert fired >= 2  # private write and exclusive link at minimum
        lease_path.unlink(missing_ok=True)

    def test_reclaim_crash_points_always_reconverge(self, job_dir):
        clock = FakeClock()
        lease_path = job_dir / "leases" / "00000.lease"

        def claim():
            coordinator = LeaseCoordinator(job_dir, worker_id="dying", ttl=1.0, clock=clock)
            assert coordinator.acquire() is not None
            clock.advance(5.0)  # the claim expires immediately

        claim()

        def operation():
            reclaimer = LeaseCoordinator(job_dir, worker_id="reclaimer", ttl=10.0, clock=clock)
            assert reclaimer.acquire() is not None

        def recover():
            # Whatever point the crash hit, a fresh worker converges: the
            # stale or half-reclaimed lease is reclaimed/requarantined and
            # the point ends claimed by the recovering worker.
            operation()
            lease = json.loads(lease_path.read_text())
            assert lease["index"] == 0 and lease["worker_id"] == "reclaimer"
            lease_path.unlink()
            claim()

        fired = enumerate_crashes(operation, recover, max_points=48)
        assert fired >= 3  # graveyard rename + record write + re-claim points

    def test_torn_lease_is_quarantined_and_point_reclaimed(self, job_dir):
        clock = FakeClock()
        coordinator = LeaseCoordinator(job_dir, worker_id="w0", ttl=10.0, clock=clock)
        assert coordinator.acquire() is not None
        lease_path = job_dir / "leases" / "00000.lease"
        lease_path.write_text("{")  # torn lease: invalid JSON

        rival = LeaseCoordinator(job_dir, worker_id="w1", ttl=10.0, clock=clock)
        lease = rival.acquire()
        assert lease is not None and lease.index == 0 and lease.worker_id == "w1"
        quarantined = job_dir / "quarantine" / "00000.lease"
        assert quarantined.read_text() == "{"
        reason = json.loads(quarantined.with_name("00000.lease.reason.json").read_text())
        assert "unreadable lease" in reason["reason"]
        assert storage.STATS.quarantined == 1
