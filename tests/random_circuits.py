"""Seeded random logical-circuit generator for differential tests.

Unlike the hypothesis strategies in ``test_properties.py`` (which explore
shrinking-friendly spaces), this generator is plain ``numpy``-seeded: the
same seed always yields the same circuit on every machine, so differential
suites (pipeline versus the frozen legacy compiler, sharded versus unsharded
sweeps) can pin exact circuits without recording them.

The gate vocabulary is the compiler's supported logical set — the same one
the paper's workloads draw from — so every generated circuit must compile
under every strategy.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit

__all__ = ["ONE_QUBIT_GATES", "THREE_QUBIT_GATES", "TWO_QUBIT_GATES", "random_logical_circuit"]

ONE_QUBIT_GATES = ("X", "Z", "H", "S", "T")
TWO_QUBIT_GATES = ("CX", "CZ", "SWAP")
THREE_QUBIT_GATES = ("CCX", "CCZ", "CSWAP")

#: Arity mix: mostly one/two-qubit gates with a real three-qubit presence,
#: mirroring the paper's workloads (which are Toffoli/CSWAP-heavy).
_ARITY_POOL = (1, 1, 2, 2, 2, 3, 3)


def random_logical_circuit(
    seed: int,
    num_qubits: int | None = None,
    num_gates: int | None = None,
) -> QuantumCircuit:
    """Return a deterministic pseudo-random logical circuit.

    ``num_qubits`` defaults to a seed-derived value in [3, 6] and
    ``num_gates`` to one in [10, 20]; pass them explicitly to pin the shape.
    """
    rng = np.random.default_rng(seed)
    if num_qubits is None:
        num_qubits = int(rng.integers(3, 7))
    if num_gates is None:
        num_gates = int(rng.integers(10, 21))
    if num_qubits < 3:
        raise ValueError("need at least 3 qubits for the three-qubit vocabulary")
    circuit = QuantumCircuit(num_qubits, name=f"random-{seed}-{num_qubits}q{num_gates}g")
    for _ in range(num_gates):
        arity = int(rng.choice(_ARITY_POOL))
        qubits = [int(q) for q in rng.choice(num_qubits, size=arity, replace=False)]
        if arity == 1:
            name = str(rng.choice(ONE_QUBIT_GATES))
        elif arity == 2:
            name = str(rng.choice(TWO_QUBIT_GATES))
        else:
            name = str(rng.choice(THREE_QUBIT_GATES))
        circuit.add(name, *qubits)
    return circuit
