"""Plain (non-fixture) helpers shared across the test suites.

These used to be copied into several test modules; they live here —
not in ``conftest.py`` — because test files import them by module name
(``from helpers import mini_points``) and the bare ``conftest`` name is
claimed by whichever of the tests/ and benchmarks/ conftest files loads
first in a full-tree run.  The tests directory is on ``sys.path`` during
collection, so the import resolves unambiguously.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.core.compiler import compile_circuit
from repro.core.strategies import Strategy
from repro.experiments.fidelity_sweep import fidelity_sweep_points


def compile_log_keys(cache_dir):
    """Compilation keys logged to the cache's audit log, in order."""
    log = cache_dir / "compile-log.txt"
    if not log.exists():
        return []
    return [line.split()[1] for line in log.read_text().splitlines()]


def mini_points(num_trajectories=3):
    """The Fig. 7 mini-grid: cnu-5 under the six Figure 7 strategies."""
    return fidelity_sweep_points(
        workloads=("cnu",), sizes=(5,), num_trajectories=num_trajectories, rng=0
    )


def mixed_physical(name, strategy=Strategy.MIXED_RADIX_CCZ, cswap=True):
    """A compiled 4-qubit circuit mixing 1q/2q/3q gates (``name`` keys caches)."""
    circuit = QuantumCircuit(4, name=name)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.ccx(0, 1, 2)
    if cswap:
        circuit.cswap(2, 0, 3)
    circuit.cx(2, 3)
    return compile_circuit(circuit, strategy).physical_circuit
