"""Tests for the shared compilation-artifact cache (repro.core.compile_cache)."""

import json

import pytest

from repro.core.compile_cache import (
    CACHE_DIR_ENV_VAR,
    CACHE_SCHEMA_VERSION,
    CompileCache,
    compilation_cache_key,
    fingerprint,
    get_cache,
    reset_cache,
)
from repro.core.compiler import compile_circuit
from repro.core.gateset import ErrorModel
from repro.core.strategies import Strategy
from repro.experiments.sweep import SweepPoint, SweepRunner, _compiled, point_seeds
from repro.noise.model import NoiseModel
from repro.noise.program import cached_compile_program
from repro.noise.trajectory import TrajectorySimulator
from repro.workloads import workload_by_name


@pytest.fixture
def disk_cache(tmp_path, monkeypatch):
    """A fresh process-wide cache backed by a temporary directory."""
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
    reset_cache()
    yield tmp_path
    reset_cache()


class TestKeys:
    def test_fingerprint_respects_token_boundaries(self):
        assert fingerprint(["ab", "c"]) != fingerprint(["a", "bc"])
        assert fingerprint(["a", "b"]) == fingerprint(["a", "b"])

    def test_key_sensitivity(self):
        circuit = workload_by_name("cnu", 5)
        other_circuit = workload_by_name("cnu", 6)
        base = compilation_cache_key(circuit, "QUBIT_ONLY", None, ErrorModel(), "numpy")
        assert base == compilation_cache_key(circuit, "QUBIT_ONLY", None, ErrorModel(), "numpy")
        assert base != compilation_cache_key(other_circuit, "QUBIT_ONLY", None, ErrorModel(), "numpy")
        assert base != compilation_cache_key(circuit, "FULL_QUQUART", None, ErrorModel(), "numpy")
        assert base != compilation_cache_key(
            circuit, "QUBIT_ONLY", None, ErrorModel(ququart_error_factor=2.0), "numpy"
        )

    def test_backend_folds_into_key(self):
        """Regression: switching REPRO_BACKEND must never reuse artifacts."""
        circuit = workload_by_name("cnu", 5)
        numpy_key = compilation_cache_key(circuit, "QUBIT_ONLY", None, ErrorModel(), "numpy")
        torch_key = compilation_cache_key(circuit, "QUBIT_ONLY", None, ErrorModel(), "torch")
        assert numpy_key != torch_key

    def test_compiled_separates_backends(self):
        args = ("cnu", 5, (), "QUBIT_ONLY", 1.0)
        numpy_result = _compiled(*args, backend="numpy")
        torch_result = _compiled(*args, backend="torch")
        assert numpy_result is not torch_result  # distinct cache entries
        assert _compiled(*args, backend="numpy") is numpy_result


class TestCompileCache:
    def test_memory_only_round_trip(self):
        cache = CompileCache(directory=None)
        assert cache.get("k" * 64) is None
        cache.put("k" * 64, {"value": 1})
        assert cache.get("k" * 64) == {"value": 1}
        assert not cache.persistent
        with pytest.raises(ValueError):
            cache.path_for("k" * 64)

    def test_memory_front_is_lru(self):
        cache = CompileCache(directory=None, memory_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now the oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_none_is_not_cacheable(self):
        with pytest.raises(ValueError):
            CompileCache(directory=None).put("k", None)

    def test_disk_round_trip_across_instances(self, tmp_path):
        writer = CompileCache(directory=tmp_path)
        writer.put("deadbeef", [1, 2, 3])
        assert writer.path_for("deadbeef").exists()
        assert f"v{CACHE_SCHEMA_VERSION}" in str(writer.path_for("deadbeef"))

        reader = CompileCache(directory=tmp_path)  # a different process, effectively
        assert reader.get("deadbeef") == [1, 2, 3]
        assert reader.stats.disk_hits == 1

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        path = cache.path_for("cafebabe")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"definitely not a pickle")
        assert cache.get("cafebabe") is None
        assert cache.stats.disk_errors == 1
        # Never honoured, never silently deleted: the bytes move into
        # quarantine/ with a JSON reason record.
        assert not path.exists()
        quarantined = tmp_path / "quarantine" / path.name
        assert quarantined.read_bytes() == b"definitely not a pickle"
        reason = json.loads((tmp_path / "quarantine" / f"{path.name}.reason.json").read_text())
        assert reason["reason"] == "undeserializable cache entry"
        assert reason["error"] is not None

    def test_get_or_create_computes_once_and_logs(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        calls = []

        def factory():
            calls.append(1)
            return "artifact"

        assert cache.get_or_create("feed" * 16, factory) == "artifact"
        assert cache.get_or_create("feed" * 16, factory) == "artifact"
        assert len(calls) == 1
        log = (tmp_path / "compile-log.txt").read_text().splitlines()
        assert len(log) == 1 and log[0].endswith("feed" * 16)

    def test_get_cache_follows_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        reset_cache()
        try:
            assert not get_cache().persistent
            monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
            cache = get_cache()
            assert cache.persistent and cache.directory == tmp_path
            assert get_cache() is cache
        finally:
            reset_cache()


class TestProgramCache:
    def test_cached_program_is_bit_for_bit(self, disk_cache):
        physical = compile_circuit(
            workload_by_name("cnu", 5), Strategy.MIXED_RADIX_CCZ
        ).physical_circuit
        cold = TrajectorySimulator(NoiseModel(), rng=7).average_fidelity(
            physical, num_trajectories=6, batch_size=3
        )
        assert get_cache().stats.puts >= 1
        get_cache().clear_memory()
        warm = TrajectorySimulator(NoiseModel(), rng=7).average_fidelity(
            physical, num_trajectories=6, batch_size=3
        )
        assert get_cache().stats.disk_hits >= 1
        assert warm.fidelities == cold.fidelities

    def test_program_structure_survives_round_trip(self, disk_cache):
        physical = compile_circuit(
            workload_by_name("cuccaro", 4), Strategy.FULL_QUQUART
        ).physical_circuit
        cold = cached_compile_program(physical, NoiseModel())
        get_cache().clear_memory()
        warm = cached_compile_program(physical, NoiseModel())
        assert warm is not cold
        assert len(warm.steps) == len(cold.steps)
        assert [type(step).__name__ for step in warm.steps] == [
            type(step).__name__ for step in cold.steps
        ]
        assert warm.dims == cold.dims


class TestSweepRunnerReuse:
    """Acceptance: cached sweeps are identical and compile each key once."""

    def _points(self):
        seeds = point_seeds(3, 4)
        strategies = ["QUBIT_ONLY", "MIXED_RADIX_CCZ", "FULL_QUQUART", "QUBIT_ITOFFOLI"]
        return [
            SweepPoint(workload="cnu", size=5, strategy=s, num_trajectories=2, seed=seed)
            for s, seed in zip(strategies, seeds)
        ]

    def test_cached_run_matches_uncached_and_reuses(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        reset_cache()
        uncached_csv = tmp_path / "uncached.csv"
        SweepRunner(max_workers=2, csv_path=uncached_csv).run(self._points())

        cache_dir = tmp_path / "cache"
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(cache_dir))
        reset_cache()
        try:
            first_csv = tmp_path / "first.csv"
            second_csv = tmp_path / "second.csv"
            SweepRunner(max_workers=2, csv_path=first_csv).run(self._points())
            log_after_first = (cache_dir / "compile-log.txt").read_text().splitlines()
            # Each unique (circuit, strategy, device) — and each trajectory
            # program — was compiled at most once across all workers.
            keys = [line.split()[1] for line in log_after_first]
            assert len(keys) == len(set(keys))

            SweepRunner(max_workers=2, csv_path=second_csv).run(self._points())
            log_after_second = (cache_dir / "compile-log.txt").read_text().splitlines()
            assert log_after_second == log_after_first  # zero recompilations

            assert first_csv.read_bytes() == uncached_csv.read_bytes()
            assert second_csv.read_bytes() == uncached_csv.read_bytes()
        finally:
            reset_cache()
