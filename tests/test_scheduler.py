"""Tests for the lease-based work-stealing coordinator (repro.experiments.scheduler).

The core invariants: exactly one worker wins any claim/reclaim race (atomic
link/rename decides, the loser re-pulls), dead workers' leases expire and
their points are re-leased, heartbeats keep slow-but-alive workers from
being reclaimed, stale on-disk state from another SHARD_SCHEMA_VERSION is
rejected loudly — and for any worker count, kill schedule and lease-TTL
setting, ``merge_job`` output is **byte-identical** to an unsharded
``SweepRunner`` run of the same grid.

Lease timing runs on an injected fake clock, so no test sleeps to make a
deadline pass; the two heartbeat-thread tests use real (sub-second) clocks
because the renewal thread is real.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.emitter import CompilationError
from repro.experiments import sweep as sweep_mod
from repro.experiments.scheduler import (
    SHARD_SCHEMA_VERSION,
    JobSpec,
    Lease,
    LeaseCoordinator,
    LeasedWorker,
    LeaseLost,
    SchedulerError,
    WorkerManifest,
    job_status,
    landed_rows,
    load_job,
    merge_job,
    plan_job,
    save_job,
)
from repro.experiments.sweep import SweepRunner, point_key
from helpers import compile_log_keys
from helpers import mini_points as _shared_mini_points

REPO_ROOT = Path(__file__).parents[1]


def wait_for_lease_held_by(directory, worker_id, timeout=10.0):
    """Block until ``worker_id`` holds the lease on point 0 (real clock)."""
    lease_path = directory / "leases" / "00000.lease"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if json.loads(lease_path.read_text())["worker_id"] == worker_id:
                return
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.01)
    pytest.fail(f"worker {worker_id!r} never claimed the lease")


def mini_points(num_trajectories=2):
    """The shared mini-grid, at this suite's lighter default budget."""
    return _shared_mini_points(num_trajectories=num_trajectories)


class FakeClock:
    """Deterministic lease timebase: advances only when a test says so."""

    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_job(directory, points=None, policy="fifo", **plan_kwargs):
    spec = plan_job(points if points is not None else mini_points(), policy=policy, **plan_kwargs)
    save_job(spec, directory)
    return spec


def make_worker(directory, worker_id, clock, ttl=10.0, **kwargs):
    kwargs.setdefault("runner", SweepRunner(max_workers=1))
    kwargs.setdefault("heartbeat", False)
    kwargs.setdefault("sleep", lambda seconds: None)
    return LeasedWorker(directory, worker_id=worker_id, ttl=ttl, clock=clock, **kwargs)


# ---------------------------------------------------------------------------
# job specs
# ---------------------------------------------------------------------------


class TestJobSpec:
    def test_round_trips_through_json(self, tmp_path):
        spec = make_job(tmp_path / "job")
        loaded = load_job(tmp_path / "job")
        assert loaded == spec
        assert loaded.fingerprint == spec.fingerprint

    def test_rejects_other_schema_versions(self, tmp_path):
        directory = tmp_path / "job"
        spec = make_job(directory)
        payload = spec.to_json()
        payload["schema"] = SHARD_SCHEMA_VERSION + 1
        (directory / "job.json").write_text(json.dumps(payload))
        with pytest.raises(SchedulerError, match="schema"):
            load_job(directory)

    def test_rejects_tampered_contents(self, tmp_path):
        directory = tmp_path / "job"
        spec = make_job(directory)
        payload = spec.to_json()
        payload["priorities"][0] = 99.0
        (directory / "job.json").write_text(json.dumps(payload))
        with pytest.raises(SchedulerError, match="fingerprint"):
            load_job(directory)

    def test_rejects_unknown_policy_and_bad_priorities(self):
        points = tuple(mini_points())
        with pytest.raises(SchedulerError, match="policy"):
            JobSpec(points=points, policy="lifo", priorities=(0.0,) * len(points))
        with pytest.raises(SchedulerError, match="priorit"):
            JobSpec(points=points, policy="fifo", priorities=(0.0,))

    def test_fifo_order_is_grid_order(self):
        spec = plan_job(mini_points(), policy="fifo")
        assert spec.acquisition_order() == list(range(len(spec.points)))
        assert spec.priorities == (0.0,) * len(spec.points)

    def test_cost_weighted_order_leases_expensive_points_first(self):
        points = mini_points()
        costs = {point_key(p): float(i * i % 7) for i, p in enumerate(points)}
        spec = plan_job(points, policy="cost-weighted", cost_fn=lambda p: costs[point_key(p)])
        order = spec.acquisition_order()
        ordered_costs = [spec.priorities[index] for index in order]
        assert ordered_costs == sorted(ordered_costs, reverse=True)
        # Ties break on the lower index, so the order is fully deterministic.
        assert order == sorted(
            range(len(points)), key=lambda index: (-spec.priorities[index], index)
        )


# ---------------------------------------------------------------------------
# the lease protocol
# ---------------------------------------------------------------------------


class TestLeaseProtocol:
    def test_acquire_follows_priority_order_and_skips_settled(self, tmp_path):
        directory = tmp_path / "job"
        points = mini_points()
        make_job(directory, points, policy="cost-weighted", cost_fn=lambda p: float(p.seed % 5))
        clock = FakeClock()
        coordinator = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        first = coordinator.acquire()
        assert first is not None
        assert first.index == coordinator.spec.acquisition_order()[0]
        coordinator.complete(first)
        second = coordinator.acquire()
        assert second is not None
        assert second.index == coordinator.spec.acquisition_order()[1]

    def test_live_lease_blocks_other_workers(self, tmp_path):
        directory = tmp_path / "job"
        make_job(directory, mini_points()[:1])
        clock = FakeClock()
        a = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        b = LeaseCoordinator(directory, worker_id="b", ttl=10, clock=clock)
        lease = a.acquire()
        assert lease is not None and lease.worker_id == "a"
        assert b.acquire() is None
        clock.advance(9.9)
        assert b.acquire() is None  # still live: deadline has not passed

    def test_expired_lease_is_reclaimed_and_re_leased(self, tmp_path):
        directory = tmp_path / "job"
        make_job(directory, mini_points()[:1])
        clock = FakeClock()
        a = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        b = LeaseCoordinator(directory, worker_id="b", ttl=10, clock=clock)
        dead = a.acquire()  # worker a "dies" holding the lease
        assert dead is not None
        clock.advance(10.1)
        release = b.acquire()
        assert release is not None
        assert release.index == dead.index and release.worker_id == "b"
        status = job_status(directory, clock=clock)
        assert status["reclaimed"] == 1 and status["leased"] == 1

    def test_renewal_prevents_reclaim_of_slow_but_alive_worker(self, tmp_path):
        directory = tmp_path / "job"
        make_job(directory, mini_points()[:1])
        clock = FakeClock()
        a = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        b = LeaseCoordinator(directory, worker_id="b", ttl=10, clock=clock)
        lease = a.acquire()
        clock.advance(8.0)
        renewed = a.renew(lease)  # the heartbeat fires before the deadline
        assert renewed.expires_at == clock() + 10
        clock.advance(4.0)  # past the *original* deadline, inside the renewed one
        assert b.acquire() is None
        assert job_status(directory, clock=clock)["reclaimed"] == 0

    def test_renewal_only_moves_deadlines_forward(self, tmp_path):
        directory = tmp_path / "job"
        make_job(directory, mini_points()[:1])
        clock = FakeClock()
        a = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        lease = a.acquire()
        clock.now -= 5.0  # a backwards clock step must not shrink the lease
        renewed = a.renew(lease)
        assert renewed.expires_at == lease.expires_at

    def test_renew_after_reclaim_raises_lease_lost(self, tmp_path):
        directory = tmp_path / "job"
        make_job(directory, mini_points()[:1])
        clock = FakeClock()
        a = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        b = LeaseCoordinator(directory, worker_id="b", ttl=10, clock=clock)
        lease = a.acquire()
        clock.advance(10.1)
        assert b.acquire() is not None  # b reclaims and re-leases the point
        with pytest.raises(LeaseLost, match="reclaimed"):
            a.renew(lease)

    def test_reclaim_race_atomic_rename_decides_and_loser_repulls(self, tmp_path):
        directory = tmp_path / "job"
        make_job(directory, mini_points()[:2])
        clock = FakeClock()
        a = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        b = LeaseCoordinator(directory, worker_id="b", ttl=10, clock=clock)
        dead = a.acquire()
        clock.advance(10.1)
        stale = b._read_lease(dead.index)
        # Both workers see the expired lease; exactly one rename can win.
        assert a._reclaim(dead.index, stale) is True
        assert b._reclaim(dead.index, stale) is False
        # The loser re-pulls and still makes progress (the freed point is
        # unclaimed, so the very next acquire picks it up).
        release = b.acquire()
        assert release is not None and release.index == dead.index

    def test_claim_race_atomic_link_decides(self, tmp_path):
        directory = tmp_path / "job"
        make_job(directory, mini_points()[:1])
        clock = FakeClock()
        a = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        b = LeaseCoordinator(directory, worker_id="b", ttl=10, clock=clock)
        assert a._try_claim(0) is not None
        assert b._try_claim(0) is None  # os.link refuses to replace the file
        # Neither claim attempt leaves tmp droppings behind.
        assert sorted(p.name for p in (directory / "leases").iterdir()) == ["00000.lease"]

    def test_stale_lease_from_other_schema_version_is_rejected(self, tmp_path):
        directory = tmp_path / "job"
        make_job(directory, mini_points()[:1])
        clock = FakeClock()
        coordinator = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        lease_dir = directory / "leases"
        lease_dir.mkdir(parents=True, exist_ok=True)
        stale = {
            "schema": SHARD_SCHEMA_VERSION + 1,
            "index": 0,
            "point_key": "k",
            "job_fingerprint": "f",
            "worker_id": "ghost",
            "token": "ghost:1:1",
            "expires_at": 0.0,
        }
        (lease_dir / "00000.lease").write_text(json.dumps(stale))
        with pytest.raises(SchedulerError, match="stale leases are rejected"):
            coordinator.acquire()

    def test_release_leaves_a_successor_lease_alone(self, tmp_path):
        directory = tmp_path / "job"
        make_job(directory, mini_points()[:1])
        clock = FakeClock()
        a = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        b = LeaseCoordinator(directory, worker_id="b", ttl=10, clock=clock)
        lost = a.acquire()
        clock.advance(10.1)
        successor = b.acquire()
        # a finishes its (reclaimed) evaluation: the done marker lands, but
        # b's live lease must survive a's release.
        a.complete(lost)
        current = b._read_lease(successor.index)
        assert current is not None and current.token == successor.token

    def test_done_markers_carry_no_worker_attribution(self, tmp_path):
        directory = tmp_path / "job"
        make_job(directory, mini_points()[:1])
        clock = FakeClock()
        a = LeaseCoordinator(directory, worker_id="a", ttl=10, clock=clock)
        b = LeaseCoordinator(directory, worker_id="b", ttl=10, clock=clock)
        lost = a.acquire()
        clock.advance(10.1)
        successor = b.acquire()
        a.complete(lost)
        first = (directory / "done" / "00000.json").read_bytes()
        b.complete(successor)  # benign double execution: byte-identical marker
        assert (directory / "done" / "00000.json").read_bytes() == first


# ---------------------------------------------------------------------------
# the worker loop
# ---------------------------------------------------------------------------


class TestLeasedWorker:
    def test_kill_schedule_merges_byte_identical_to_unsharded(self, tmp_path, shared_cache):
        points = mini_points()
        unsharded_csv = tmp_path / "unsharded.csv"
        unsharded_json = tmp_path / "unsharded.json"
        SweepRunner(max_workers=1, csv_path=unsharded_csv, json_path=unsharded_json).run(points)
        cold_keys = compile_log_keys(shared_cache)

        directory = tmp_path / "job"
        make_job(directory, points)
        clock = FakeClock()
        killed = make_worker(directory, "w0", clock, abandon_after=1)
        report = killed.run()
        assert report.abandoned and report.num_completed == 1
        assert job_status(directory, clock=clock)["leased"] == 1

        clock.advance(10.1)  # the abandoned lease expires...
        drainer = make_worker(directory, "w1", clock)
        report = drainer.run()
        assert report.num_completed == len(points) - 1

        status = job_status(directory, clock=clock)
        assert status["mergeable"] and status["reclaimed"] == 1
        merged = merge_job(directory)
        assert merged.csv_path.read_bytes() == unsharded_csv.read_bytes()
        assert merged.json_path.read_bytes() == unsharded_json.read_bytes()
        # The leased pass reused every compilation the unsharded pass cached,
        # and no key was ever compiled twice.
        keys = compile_log_keys(shared_cache)
        assert keys == cold_keys
        assert len(keys) == len(set(keys))

    def test_failure_is_recorded_not_re_leased_and_blocks_merge(
        self, tmp_path, shared_cache, monkeypatch
    ):
        points = mini_points()
        directory = tmp_path / "job"
        make_job(directory, points)
        poison = point_key(points[2])

        real_evaluate = sweep_mod.evaluate_point

        def failing_evaluate(point):
            if point_key(point) == poison:
                raise CompilationError("injected failure", gate="CCX", pass_name="emit")
            return real_evaluate(point)

        monkeypatch.setattr(sweep_mod, "evaluate_point", failing_evaluate)
        clock = FakeClock()
        worker = make_worker(directory, "w0", clock)
        report = worker.run()
        assert report.num_failed == 1 and report.num_completed == len(points) - 1

        status = job_status(directory, clock=clock)
        assert status["failed"] == 1 and not status["mergeable"]
        record = json.loads((directory / "failed" / "00002.json").read_text())
        assert record["point_key"] == poison
        assert record["error_type"] == "CompilationError" and record["gate"] == "CCX"
        with pytest.raises(SchedulerError, match="failed"):
            merge_job(directory)

    def test_worker_directory_is_bound_to_its_job(self, tmp_path, shared_cache):
        points = mini_points()
        first = tmp_path / "first"
        make_job(first, points)
        clock = FakeClock()
        make_worker(first, "w0", clock, max_points=1).run()
        # Re-pointing the same worker directory at a different job must fail.
        second = tmp_path / "second"
        make_job(second, points[:3])
        (second / "workers").mkdir(parents=True, exist_ok=True)
        (first / "workers" / "w0").rename(second / "workers" / "w0")
        with pytest.raises(SchedulerError, match="different job"):
            make_worker(second, "w0", clock)

    def test_max_points_stops_early_without_draining(self, tmp_path, shared_cache):
        directory = tmp_path / "job"
        make_job(directory, mini_points())
        clock = FakeClock()
        report = make_worker(directory, "w0", clock, max_points=2).run()
        assert report.num_completed == 2 and not report.abandoned
        assert job_status(directory, clock=clock)["done"] == 2

    def test_landed_rows_rejects_foreign_worker_manifests(self, tmp_path, shared_cache):
        directory = tmp_path / "job"
        make_job(directory, mini_points())
        worker_dir = directory / "workers" / "ghost"
        worker_dir.mkdir(parents=True)
        WorkerManifest(worker_id="ghost", job_fingerprint="not-this-job").save(worker_dir)
        with pytest.raises(SchedulerError, match="different job"):
            landed_rows(directory)

    def test_heartbeat_keeps_slow_worker_alive_under_a_real_clock(self, tmp_path, shared_cache):
        points = mini_points(num_trajectories=0)[:1]  # compile-only: fast
        directory = tmp_path / "job"
        make_job(directory, points)

        class SlowRunner(SweepRunner):
            def iter_evaluate(self, batch):
                time.sleep(0.8)  # several TTLs long
                yield from super().iter_evaluate(batch)

        worker = LeasedWorker(
            directory,
            worker_id="slow",
            runner=SlowRunner(max_workers=1),
            ttl=0.3,
            heartbeat=True,
        )
        thread = threading.Thread(target=worker.run)
        thread.start()
        wait_for_lease_held_by(directory, "slow")
        rival = LeaseCoordinator(directory, worker_id="rival", ttl=0.3)
        stolen = 0
        while thread.is_alive():
            if rival.acquire() is not None:
                stolen += 1
            time.sleep(0.02)
        thread.join()
        assert stolen == 0, "heartbeat renewal failed to keep the slow worker's lease alive"
        assert job_status(directory)["done"] == 1

    def test_without_heartbeat_the_same_slow_worker_is_reclaimed(self, tmp_path, shared_cache):
        points = mini_points(num_trajectories=0)[:1]
        directory = tmp_path / "job"
        make_job(directory, points)

        class SlowRunner(SweepRunner):
            def iter_evaluate(self, batch):
                time.sleep(0.8)
                yield from super().iter_evaluate(batch)

        worker = LeasedWorker(
            directory,
            worker_id="slow",
            runner=SlowRunner(max_workers=1),
            ttl=0.15,
            heartbeat=False,
        )
        thread = threading.Thread(target=worker.run)
        thread.start()
        wait_for_lease_held_by(directory, "slow")
        rival = LeaseCoordinator(directory, worker_id="rival", ttl=0.15)
        stolen = None
        deadline = time.monotonic() + 5.0
        while stolen is None and time.monotonic() < deadline:
            stolen = rival.acquire()
            time.sleep(0.02)
        thread.join()
        assert stolen is not None, "an unrenewed lease should expire and be reclaimed"
        # Both executions finish; their records are byte-identical, so the
        # double execution is benign and the job still merges.
        rival.complete(stolen)
        assert job_status(directory)["done"] == 1

    def test_sigkilled_worker_subprocess_points_are_reclaimed(self, tmp_path, shared_cache):
        """A worker killed with SIGKILL strands its lease; expiry frees it."""
        points = mini_points()
        directory = tmp_path / "job"
        make_job(directory, points)
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.scheduler",
                "work",
                "--dir",
                str(directory),
                "--worker-id",
                "victim",
                "--ttl",
                "600",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            leases = directory / "leases"
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if leases.is_dir() and any(leases.glob("*.lease")):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("subprocess worker never claimed a lease")
            process.send_signal(signal.SIGKILL)
        finally:
            process.wait()

        # The victim's lease has a 600 s deadline in real wall-clock time; a
        # clock injected 601 s ahead sees it expired, reclaims and drains.
        clock = FakeClock(start=time.time() + 601.0)
        drainer = make_worker(directory, "drainer", clock, ttl=600)
        drainer.run()
        status = job_status(directory, clock=clock)
        assert status["mergeable"] and status["reclaimed"] >= 1
        merge_job(directory)
