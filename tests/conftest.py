"""Shared fixtures for the test suite.

The shared ``$REPRO_CACHE_DIR`` fixture and the autouse fastpath-isolation
fixture live here and resolve by name as usual; the plain helper
*functions* several suites used to copy (the compile-log audit reader,
the Fig. 7 mini-grid builder, the 4-qubit mixed-gate compile helper)
live in :mod:`helpers` (``from helpers import mini_points``) so a
full-tree run collecting benchmarks/ alongside tests/ cannot shadow
them through the ambiguous bare ``conftest`` module name.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.circuits.circuit import QuantumCircuit
from repro.core.compile_cache import reset_cache
from repro.core.storage import reset_storage_stats
from repro.noise.fastpath import reset_fastpath


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def shared_cache(tmp_path, monkeypatch):
    """A fresh shared REPRO_CACHE_DIR, as workers on a common mount would see."""
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    reset_cache()
    yield cache_dir
    reset_cache()


@pytest.fixture(autouse=True)
def fresh_fastpath():
    """Isolate the fastpath record store and counters per test."""
    reset_fastpath()
    yield
    reset_fastpath()


@pytest.fixture(autouse=True)
def no_fault_plan():
    """No test leaks an installed fault plan (or storage counters) to the next."""
    faults.clear_plan()
    reset_storage_stats()
    yield
    faults.clear_plan()
    reset_storage_stats()


@pytest.fixture
def small_toffoli_circuit() -> QuantumCircuit:
    """A 5-qubit circuit mixing 1q, 2q and 3q gates."""
    circuit = QuantumCircuit(5, name="small-toffoli")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.ccx(0, 1, 2)
    circuit.x(3)
    circuit.ccx(2, 3, 4)
    circuit.cswap(4, 0, 2)
    circuit.ccz(1, 3, 4)
    circuit.swap(0, 4)
    return circuit


@pytest.fixture
def tiny_ccx_circuit() -> QuantumCircuit:
    """A 3-qubit circuit containing a single Toffoli."""
    return QuantumCircuit(3, name="tiny-ccx").h(0).h(1).ccx(0, 1, 2)
