"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_toffoli_circuit() -> QuantumCircuit:
    """A 5-qubit circuit mixing 1q, 2q and 3q gates."""
    circuit = QuantumCircuit(5, name="small-toffoli")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.ccx(0, 1, 2)
    circuit.x(3)
    circuit.ccx(2, 3, 4)
    circuit.cswap(4, 0, 2)
    circuit.ccz(1, 3, 4)
    circuit.swap(0, 4)
    return circuit


@pytest.fixture
def tiny_ccx_circuit() -> QuantumCircuit:
    """A 3-qubit circuit containing a single Toffoli."""
    return QuantumCircuit(3, name="tiny-ccx").h(0).h(1).ccx(0, 1, 2)
