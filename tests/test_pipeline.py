"""Tests for the pass pipeline (repro.core.pipeline)."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.core.compiler import QuantumWaltzCompiler, compile_circuit
from repro.core.emitter import CompilationError
from repro.core.pipeline import (
    CompilationContext,
    DecomposePass,
    EmitPass,
    Pass,
    PlacePass,
    Pipeline,
    RoutePass,
    default_pipeline,
    devices_required,
    expand_strategy_gates,
)
from repro.core.strategies import Strategy
from repro.topology.device import Device


def small_circuit() -> QuantumCircuit:
    return QuantumCircuit(5, name="small").h(0).cx(0, 1).ccx(0, 1, 2).cswap(2, 3, 4)


class TestDefaultPipeline:
    def test_devices_required(self):
        circuit = small_circuit()
        assert devices_required(circuit, Strategy.QUBIT_ONLY) == 5
        assert devices_required(circuit, Strategy.FULL_QUQUART) == 3

    def test_report_totals(self):
        result = compile_circuit(small_circuit(), Strategy.MIXED_RADIX_CCZ)
        report = result.pass_report
        assert report.total_wall_time_s == sum(m.wall_time_s for m in report.passes)
        rows = report.as_rows()
        assert [row["pass"] for row in rows] == ["decompose", "place", "route", "emit"]
        assert rows[-1]["op_delta"] == result.num_ops
        with pytest.raises(KeyError):
            report.metrics_for("nonexistent")

    def test_fresh_pipeline_per_compiler(self):
        # default_pipeline() returns fresh pass instances each time.
        assert default_pipeline().passes is not default_pipeline().passes


class TestCustomPipelines:
    def test_dropping_decompose_pass_is_equivalent(self):
        """EmitPass retains the full demand-driven lowering logic."""
        circuit = small_circuit()
        for strategy in (Strategy.QUBIT_ITOFFOLI, Strategy.MIXED_RADIX_CCZ, Strategy.FULL_QUQUART):
            default = QuantumWaltzCompiler().compile(circuit, strategy=strategy)
            trimmed = QuantumWaltzCompiler(
                pipeline=Pipeline([PlacePass(), RoutePass(), EmitPass()])
            ).compile(circuit, strategy=strategy)
            assert trimmed.physical_circuit.ops == default.physical_circuit.ops
            assert trimmed.final_placement == default.final_placement

    def test_instrumentation_pass_sees_context(self):
        class RecordingPass(Pass):
            name = "record"

            def __init__(self):
                self.seen = []

            def run(self, ctx: CompilationContext) -> None:
                self.seen.append((len(ctx.physical), ctx.info["emit"]["routing_swaps"]))

        recorder = RecordingPass()
        pipeline = Pipeline([DecomposePass(), PlacePass(), RoutePass(), EmitPass(), recorder])
        result = QuantumWaltzCompiler(pipeline=pipeline).compile(
            small_circuit(), strategy=Strategy.MIXED_RADIX_CCZ
        )
        assert recorder.seen == [(result.num_ops, recorder.seen[0][1])]
        assert [m.name for m in result.pass_report.passes][-1] == "record"

    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ValueError):
            Pipeline([])
        with pytest.raises(ValueError):
            Pipeline([EmitPass(), EmitPass()])


class TestErrorAttribution:
    def test_device_too_small_names_decompose_pass(self):
        circuit = small_circuit()
        with pytest.raises(CompilationError) as excinfo:
            compile_circuit(circuit, Strategy.QUBIT_ONLY, device=Device.mesh(2))
        assert excinfo.value.pass_name == "decompose"
        assert "pass=decompose" in str(excinfo.value)

    def test_missing_prerequisite_names_failing_pass(self):
        compiler = QuantumWaltzCompiler(pipeline=Pipeline([RoutePass(), EmitPass()]))
        with pytest.raises(CompilationError) as excinfo:
            compiler.compile(small_circuit(), strategy=Strategy.MIXED_RADIX_CCZ)
        assert excinfo.value.pass_name == "route"
        assert "context field" in str(excinfo.value)

    def test_attach_never_overwrites(self):
        error = CompilationError("boom", gate="CCX 0,1,2", pass_name="emit")
        error.attach(gate="other", pass_name="route")
        assert error.gate == "CCX 0,1,2"
        assert error.pass_name == "emit"
        assert "gate=CCX 0,1,2" in str(error)
        assert "pass=emit" in str(error)

    def test_pipeline_tops_up_pass_name(self):
        class FailingPass(Pass):
            name = "explode"

            def run(self, ctx: CompilationContext) -> None:
                raise CompilationError("kaboom")

        compiler = QuantumWaltzCompiler(pipeline=Pipeline([FailingPass()]))
        with pytest.raises(CompilationError) as excinfo:
            compiler.compile(small_circuit())
        assert excinfo.value.pass_name == "explode"


class TestStrategyExpansion:
    def test_full_regime_ccx_becomes_h_ccz_h(self):
        gates = expand_strategy_gates(
            [Gate("CCX", (0, 1, 2))], Strategy.FULL_QUQUART.spec
        )
        assert [g.name for g in gates] == ["H", "CCZ", "H"]
        assert gates[1].qubits == (0, 1, 2)

    def test_itoffoli_expands_to_fixpoint(self):
        # ITOFFOLI -> CS + CCX, then CCX -> H CCZ H in the full regime.
        gates = expand_strategy_gates(
            [Gate("ITOFFOLI", (0, 1, 2))], Strategy.FULL_QUQUART.spec
        )
        assert [g.name for g in gates] == ["CS", "H", "CCZ", "H"]

    def test_native_modes_keep_gates(self):
        spec = Strategy.QUBIT_ITOFFOLI.spec
        gates = expand_strategy_gates([Gate("ITOFFOLI", (0, 1, 2))], spec)
        assert [g.name for g in gates] == ["ITOFFOLI"]
        ccx = expand_strategy_gates([Gate("CCX", (0, 1, 2))], Strategy.MIXED_RADIX_CCX.spec)
        assert [g.name for g in ccx] == ["CCX"]

    def test_native_cswap_is_kept(self):
        kept = expand_strategy_gates(
            [Gate("CSWAP", (0, 1, 2))], Strategy.FULL_QUQUART_CSWAP_TARGETS.spec
        )
        assert [g.name for g in kept] == ["CSWAP"]
        # Without the native pulse, CSWAP tears down to CX . CCX . CX; the
        # inner CCX then continues to the full regime's H CCZ H fixpoint.
        torn = expand_strategy_gates([Gate("CSWAP", (0, 1, 2))], Strategy.FULL_QUQUART.spec)
        assert [g.name for g in torn] == ["CX", "H", "CCZ", "H", "CX"]
