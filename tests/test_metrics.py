"""Unit tests for the EPS estimators (Section 6.3)."""

import math

import pytest

from repro.core.compiler import compile_circuit
from repro.core.gateset import GateClass
from repro.core.metrics import coherence_eps, evaluate_metrics, gate_eps
from repro.core.physical import PhysicalCircuit, PhysicalOp
from repro.core.strategies import Strategy
from repro.topology.device import CoherenceModel
from repro.workloads import generalized_toffoli


def _op(devices, duration, error=0.01, modes=()):
    return PhysicalOp(
        label="CX2",
        logical_name="CX",
        devices=devices,
        operand_slots=((0, 1), (1, 1)),
        duration_ns=duration,
        error_rate=error,
        gate_class=GateClass.QUBIT_TWO_Q,
        sets_mode=tuple(modes),
    )


class TestGateEps:
    def test_product_of_success_rates(self):
        circuit = PhysicalCircuit(2, device_dims=2)
        circuit.append(_op((0, 1), 100.0, error=0.1))
        circuit.append(_op((0, 1), 100.0, error=0.2))
        assert gate_eps(circuit) == pytest.approx(0.9 * 0.8)

    def test_empty_circuit(self):
        assert gate_eps(PhysicalCircuit(1)) == 1.0


class TestCoherenceEps:
    def test_single_device_in_qubit_mode(self):
        coherence = CoherenceModel(base_t1_ns=1000.0)
        circuit = PhysicalCircuit(2, device_dims=2)
        circuit.initial_modes = {0: 1, 1: 1}
        circuit.append(_op((0, 1), 100.0, modes=((0, 1), (1, 1))))
        expected = math.exp(-2 * 100.0 / 1000.0)
        assert coherence_eps(circuit, coherence) == pytest.approx(expected)

    def test_higher_mode_decays_faster(self):
        coherence = CoherenceModel(base_t1_ns=1000.0)
        qubit_circuit = PhysicalCircuit(2, device_dims=4)
        qubit_circuit.initial_modes = {0: 1, 1: 1}
        qubit_circuit.append(_op((0, 1), 100.0, modes=((0, 1), (1, 1))))
        ququart_circuit = PhysicalCircuit(2, device_dims=4)
        ququart_circuit.initial_modes = {0: 3, 1: 1}
        ququart_circuit.append(_op((0, 1), 100.0, modes=((0, 3), (1, 1))))
        assert coherence_eps(ququart_circuit, coherence) < coherence_eps(qubit_circuit, coherence)

    def test_mode_change_mid_circuit(self):
        coherence = CoherenceModel(base_t1_ns=1000.0)
        circuit = PhysicalCircuit(1, device_dims=4)
        circuit.initial_modes = {0: 1}
        # One 100 ns op that promotes the device to ququart mode, then a
        # second 100 ns op that brings it back to qubit mode.
        circuit.append(
            PhysicalOp(
                label="ENC", logical_name="ENC", devices=(0,), operand_slots=((0, 0),),
                duration_ns=100.0, error_rate=0.0, gate_class=GateClass.ENCODE,
                sets_mode=((0, 3),),
            )
        )
        circuit.append(
            PhysicalOp(
                label="ENC_dg", logical_name="ENC_dg", devices=(0,), operand_slots=((0, 0),),
                duration_ns=100.0, error_rate=0.0, gate_class=GateClass.ENCODE,
                sets_mode=((0, 1),),
            )
        )
        expected = math.exp(-(1 * 100.0 + 3 * 100.0) / 1000.0)
        assert coherence_eps(circuit, coherence) == pytest.approx(expected)

    def test_empty_devices_do_not_decay(self):
        coherence = CoherenceModel(base_t1_ns=1000.0)
        circuit = PhysicalCircuit(3, device_dims=2)
        circuit.initial_modes = {0: 1, 1: 1, 2: 0}
        circuit.append(_op((0, 1), 500.0, modes=((0, 1), (1, 1))))
        expected = math.exp(-2 * 500.0 / 1000.0)
        assert coherence_eps(circuit, coherence) == pytest.approx(expected)

    def test_empty_circuit(self):
        assert coherence_eps(PhysicalCircuit(2)) == 1.0


class TestEvaluateMetrics:
    def test_total_is_product(self):
        result = compile_circuit(generalized_toffoli(5), Strategy.MIXED_RADIX_CCZ)
        metrics = evaluate_metrics(result.physical_circuit)
        assert metrics.total_eps == pytest.approx(metrics.gate_eps * metrics.coherence_eps)
        assert 0.0 < metrics.total_eps < 1.0
        assert metrics.duration_ns == pytest.approx(result.duration_ns)

    def test_as_dict_contains_class_counts(self):
        result = compile_circuit(generalized_toffoli(5), Strategy.MIXED_RADIX_CCZ)
        metrics = evaluate_metrics(result.physical_circuit)
        row = metrics.as_dict()
        assert "gate_eps" in row and "num_ops" in row
        assert any(key.startswith("count_") for key in row)

    def test_gate_eps_reflects_gate_counts(self):
        circuit = generalized_toffoli(7)
        qubit_only = evaluate_metrics(
            compile_circuit(circuit, Strategy.QUBIT_ONLY).physical_circuit
        )
        full = evaluate_metrics(
            compile_circuit(circuit, Strategy.FULL_QUQUART).physical_circuit
        )
        # Figure 8: full-ququart compilation has far better gate EPS.
        assert full.gate_eps > qubit_only.gate_eps
