"""Property tests of the artifact graph planner/evaluator on synthetic DAGs.

The figure-level guarantees (byte identity, shared-compilation dedupe)
live in tests/test_artifact_graph.py; this suite pins the *planner's*
contract in isolation on randomly generated seeded DAGs, in the spirit of
tests/random_circuits.py: deterministic topological order, at-most-once
provider evaluation under arbitrarily shared subtrees, cycle and
missing-provider detection, and replay equivalence through a persistent
cache.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.artifacts import (
    Graph,
    GraphCycleError,
    GraphError,
    MissingProviderError,
    Provider,
)
from repro.core.compile_cache import CompileCache


@dataclass(frozen=True)
class SynthNode:
    """A synthetic artifact: its dependencies live in the provider's edge map."""

    index: int

    def identity_token(self) -> str:
        return f"synth:{self.index}"


@dataclass(frozen=True)
class LabelledNode:
    """A node whose ``label`` is display-only: excluded from the token."""

    index: int
    label: str = ""

    def identity_token(self) -> str:
        return f"labelled:{self.index}"


class SynthProvider(Provider):
    """Builds synthetic artifacts from an explicit adjacency map."""

    artifact_type = SynthNode
    name = "synth"

    def __init__(self, edges, persist=False, version=1):
        self.edges = dict(edges)
        self.persist = persist
        self.version = version
        self.build_log = []

    def requires(self, node):
        return tuple(SynthNode(child) for child in self.edges.get(node.index, ()))

    def build(self, node, inputs):
        self.build_log.append(node.index)
        return (node.index, tuple(inputs))


class LabelledProvider(Provider):
    artifact_type = LabelledNode
    name = "labelled"

    def __init__(self):
        self.build_log = []

    def build(self, node, inputs):
        self.build_log.append(node)
        return f"value:{node.index}"


def random_edges(seed, num_nodes=12, fan=3):
    """A random DAG over ``num_nodes`` nodes: edges point to lower indices."""
    rng = np.random.default_rng(seed)
    edges = {}
    for index in range(1, num_nodes):
        count = int(rng.integers(0, min(fan, index) + 1))
        if count:
            children = rng.choice(index, size=count, replace=False)
            edges[index] = tuple(int(child) for child in sorted(children))
    return edges


def assert_topological(plan):
    position = {node: i for i, node in enumerate(plan.order)}
    for node in plan.order:
        for child in plan.dependencies[node]:
            canonical = next(
                other for other in plan.order if plan.keys[other] == plan.keys[child]
            )
            assert position[canonical] < position[node], (
                f"dependency {child} ordered after its dependent {node}"
            )


class TestPlanning:
    @pytest.mark.parametrize("seed", range(8))
    def test_order_is_topological_and_deterministic(self, seed):
        edges = random_edges(seed)
        targets = [SynthNode(i) for i in (11, 7, 11, 3)]
        first = Graph([SynthProvider(edges)]).plan(targets)
        second = Graph([SynthProvider(edges)]).plan(targets)
        assert_topological(first)
        assert [n.index for n in first.order] == [n.index for n in second.order]
        assert first.keys == second.keys

    def test_plan_covers_exactly_the_reachable_subgraph(self):
        edges = {3: (1, 2), 2: (0,), 1: (0,), 9: (8,)}
        plan = Graph([SynthProvider(edges)]).plan([SynthNode(3)])
        assert sorted(node.index for node in plan.order) == [0, 1, 2, 3]

    def test_duplicate_targets_collapse(self):
        plan = Graph([SynthProvider({})]).plan([SynthNode(0), SynthNode(0)])
        assert len(plan.order) == 1
        assert plan.targets == (SynthNode(0), SynthNode(0))

    def test_cycle_is_detected_and_named(self):
        edges = {0: (1,), 1: (2,), 2: (0,)}
        with pytest.raises(GraphCycleError) as excinfo:
            Graph([SynthProvider(edges)]).plan([SynthNode(0)])
        cycle = [node.index for node in excinfo.value.cycle]
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {0, 1, 2}

    def test_self_cycle_is_detected(self):
        with pytest.raises(GraphCycleError):
            Graph([SynthProvider({0: (0,)})]).plan([SynthNode(0)])

    def test_missing_provider_is_reported_with_the_type(self):
        with pytest.raises(MissingProviderError) as excinfo:
            Graph([]).plan([SynthNode(0)])
        assert excinfo.value.artifact_type is SynthNode

    def test_duplicate_provider_registration_fails(self):
        with pytest.raises(GraphError, match="duplicate provider"):
            Graph([SynthProvider({}), SynthProvider({})])

    def test_keys_fold_in_upstream_keys(self):
        shallow = Graph([SynthProvider({})]).key_of(SynthNode(1))
        deep = Graph([SynthProvider({1: (0,)})]).key_of(SynthNode(1))
        assert shallow != deep

    def test_provider_version_changes_every_downstream_key(self):
        edges = {1: (0,)}
        v1 = Graph([SynthProvider(edges, version=1)]).plan([SynthNode(1)])
        v2 = Graph([SynthProvider(edges, version=2)]).plan([SynthNode(1)])
        assert v1.keys[SynthNode(0)] != v2.keys[SynthNode(0)]
        assert v1.keys[SynthNode(1)] != v2.keys[SynthNode(1)]


class TestAtMostOnce:
    @pytest.mark.parametrize("seed", range(8))
    def test_every_key_builds_exactly_once(self, seed):
        edges = random_edges(seed)
        provider = SynthProvider(edges)
        graph = Graph([provider])
        targets = [SynthNode(i) for i in (11, 10, 11, 5, 5, 0)]
        graph.compute_many(targets)
        assert sorted(provider.build_log) == sorted(set(provider.build_log))
        assert all(count == 1 for count in graph.builds.values())

    def test_shared_subtree_across_targets_builds_once(self):
        edges = {2: (0,), 3: (0,), 4: (2, 3)}
        provider = SynthProvider(edges)
        graph = Graph([provider])
        values = graph.compute_many([SynthNode(2), SynthNode(3), SynthNode(4)])
        assert provider.build_log.count(0) == 1
        assert values[2] == (4, ((2, ((0, ()),)), (3, ((0, ()),))))

    def test_memo_spans_compute_calls(self):
        provider = SynthProvider({1: (0,)})
        graph = Graph([provider])
        first = graph.compute(SynthNode(1))
        second = graph.compute(SynthNode(1))
        assert first == second
        assert provider.build_log == [0, 1]
        assert graph.stats.memo_hits >= 1

    def test_label_twin_nodes_share_one_evaluation(self):
        provider = LabelledProvider()
        graph = Graph([provider])
        values = graph.compute_many(
            [LabelledNode(7, label="fig7"), LabelledNode(7, label="fig9a")]
        )
        assert values[0] == values[1] == "value:7"
        assert len(provider.build_log) == 1

    def test_results_align_with_targets_in_input_order(self):
        graph = Graph([SynthProvider({})])
        values = graph.compute_many([SynthNode(2), SynthNode(0), SynthNode(2)])
        assert [value[0] for value in values] == [2, 0, 2]


class TestEvaluation:
    def test_provider_returning_none_is_an_error(self):
        class NoneProvider(SynthProvider):
            def build(self, node, inputs):
                return None

        with pytest.raises(GraphError, match="returned None"):
            Graph([NoneProvider({})]).compute(SynthNode(0))

    def test_failed_build_leaves_no_partial_value(self):
        class Failing(SynthProvider):
            def build(self, node, inputs):
                if node.index == 1:
                    raise RuntimeError("boom")
                return super().build(node, inputs)

        provider = Failing({1: (0,)})
        graph = Graph([provider])
        with pytest.raises(RuntimeError, match="boom"):
            graph.compute(SynthNode(1))
        assert graph.value_of(SynthNode(0)) is not None
        assert graph.value_of(SynthNode(1)) is None


class TestPersistence:
    def test_persisted_artifacts_replay_without_rebuilding(self, tmp_path):
        edges = random_edges(3)
        cache = CompileCache(tmp_path / "cache")
        first = SynthProvider(edges, persist=True)
        cold = Graph([first], cache=cache)
        cold_values = cold.compute_many([SynthNode(11), SynthNode(6)])
        assert cold.stats.disk_puts == cold.stats.built > 0

        second = SynthProvider(edges, persist=True)
        warm = Graph([second], cache=cache)
        warm_values = warm.compute_many([SynthNode(11), SynthNode(6)])
        assert warm_values == cold_values
        assert second.build_log == []
        assert warm.stats.built == 0
        assert warm.stats.disk_hits == len(warm.plan([SynthNode(11), SynthNode(6)]).order)

    def test_version_bump_invalidates_persisted_values(self, tmp_path):
        cache = CompileCache(tmp_path / "cache")
        Graph([SynthProvider({}, persist=True, version=1)], cache=cache).compute(SynthNode(0))
        bumped = SynthProvider({}, persist=True, version=2)
        Graph([bumped], cache=cache).compute(SynthNode(0))
        assert bumped.build_log == [0]

    def test_memory_only_cache_never_replays_across_graphs(self, tmp_path):
        cache = CompileCache(None)  # no disk layer
        edges = {1: (0,)}
        Graph([SynthProvider(edges, persist=True)], cache=cache).compute(SynthNode(1))
        rebuilt = SynthProvider(edges, persist=True)
        Graph([rebuilt], cache=cache).compute(SynthNode(1))
        assert rebuilt.build_log == [0, 1]
