"""Unit tests for the durable-storage layer and the fault-injection harness."""

from __future__ import annotations

import errno
import json
from pathlib import Path

import pytest

from repro import faults
from repro.core import storage
from repro.core.compile_cache import CompileCache


def plan_of(*rules: faults.FaultRule) -> faults.FaultPlan:
    return faults.FaultPlan(rules=rules)


class TestAtomicWrites:
    def test_round_trip_and_parent_creation(self, tmp_path):
        path = storage.atomic_write_bytes(tmp_path / "a" / "b" / "c.bin", b"\x00payload")
        assert path.read_bytes() == b"\x00payload"
        assert storage.read_bytes(path) == b"\x00payload"
        assert storage.STATS.writes == 1 and storage.STATS.reads == 1

    def test_json_bytes_match_historical_format(self, tmp_path):
        payload = {"rows": [1, 2], "path": Path("x")}
        path = storage.atomic_write_json(tmp_path / "r.json", payload)
        assert path.read_text() == json.dumps(payload, indent=2, default=str)
        assert storage.read_json(path) == {"rows": [1, 2], "path": "x"}

    def test_no_temp_files_survive_a_clean_write(self, tmp_path):
        storage.atomic_write_text(tmp_path / "x.txt", "hello")
        assert [p.name for p in tmp_path.iterdir()] == ["x.txt"]

    def test_torn_write_publishes_truncated_bytes(self, tmp_path):
        plan = plan_of(faults.FaultRule(op="write", path="*.bin", kind="torn", at=0, arg=4))
        with faults.fault_plan(plan):
            storage.atomic_write_bytes(tmp_path / "t.bin", b"full payload")
        # The rename completes: readers must *detect* the corruption.
        assert (tmp_path / "t.bin").read_bytes() == b"full"
        assert plan.stats.as_dict()["torn"] == 1

    def test_crash_leaves_temp_stranded_and_destination_untouched(self, tmp_path):
        (tmp_path / "c.bin").write_bytes(b"old bytes")
        plan = plan_of(faults.FaultRule(op="write", path="*.bin", kind="crash", at=0))
        with faults.fault_plan(plan):
            with pytest.raises(faults.SimulatedCrash):
                storage.atomic_write_bytes(tmp_path / "c.bin", b"new bytes")
        assert (tmp_path / "c.bin").read_bytes() == b"old bytes"
        assert len(list(tmp_path.glob("*.tmp"))) == 1

    def test_enospc_raises_and_reaps_nothing_partial(self, tmp_path):
        plan = plan_of(faults.FaultRule(op="write", path="*", kind="enospc"))
        with faults.fault_plan(plan):
            with pytest.raises(OSError) as info:
                storage.atomic_write_bytes(tmp_path / "full.bin", b"x")
        assert info.value.errno == errno.ENOSPC
        assert list(tmp_path.iterdir()) == []


class TestRetryPolicy:
    def test_transient_eio_retries_with_exponential_backoff(self, tmp_path):
        sleeps: list[float] = []
        policy = storage.RetryPolicy(max_attempts=3, base_s=0.5, sleep=sleeps.append)
        plan = plan_of(
            faults.FaultRule(op="read", path="*.dat", kind="eio", at=0),
            faults.FaultRule(op="read", path="*.dat", kind="eio", at=1),
        )
        (tmp_path / "x.dat").write_bytes(b"eventually")
        with faults.fault_plan(plan):
            assert storage.read_bytes(tmp_path / "x.dat", retry=policy) == b"eventually"
        assert sleeps == [0.5, 1.0]
        assert storage.STATS.retries == 2

    def test_budget_exhaustion_raises_the_final_error(self, tmp_path):
        sleeps: list[float] = []
        policy = storage.RetryPolicy(max_attempts=2, base_s=0.1, sleep=sleeps.append)
        plan = plan_of(faults.FaultRule(op="read", path="*", kind="eio"))
        (tmp_path / "x.dat").write_bytes(b"never")
        with faults.fault_plan(plan):
            with pytest.raises(OSError) as info:
                storage.read_bytes(tmp_path / "x.dat", retry=policy)
        assert info.value.errno == errno.EIO
        assert sleeps == [0.1]

    def test_non_transient_errors_fail_immediately(self, tmp_path):
        sleeps: list[float] = []
        policy = storage.RetryPolicy(max_attempts=5, base_s=0.1, sleep=sleeps.append)
        plan = plan_of(faults.FaultRule(op="write", path="*", kind="enospc"))
        with faults.fault_plan(plan):
            with pytest.raises(OSError):
                storage.atomic_write_bytes(tmp_path / "x.bin", b"x", retry=policy)
        assert sleeps == []

    def test_missing_file_is_not_retried(self, tmp_path):
        sleeps: list[float] = []
        policy = storage.RetryPolicy(max_attempts=5, base_s=0.1, sleep=sleeps.append)
        with pytest.raises(FileNotFoundError):
            storage.read_bytes(tmp_path / "absent.bin", retry=policy)
        assert sleeps == []

    def test_default_policy_reads_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_MAX", "7")
        monkeypatch.setenv("REPRO_RETRY_BASE_S", "0.25")
        policy = storage.default_retry_policy()
        assert policy.max_attempts == 7
        assert policy.base_s == 0.25
        monkeypatch.delenv("REPRO_RETRY_MAX")
        monkeypatch.delenv("REPRO_RETRY_BASE_S")
        policy = storage.default_retry_policy()
        assert policy.max_attempts == storage.DEFAULT_RETRY_MAX
        assert policy.base_s == storage.DEFAULT_RETRY_BASE_S


class TestRenameAndLink:
    def test_durable_link_is_exclusive(self, tmp_path):
        a = storage.write_private_text(tmp_path / "a.tmp", "claim-a")
        b = storage.write_private_text(tmp_path / "b.tmp", "claim-b")
        storage.durable_link(a, tmp_path / "claim")
        with pytest.raises(FileExistsError):
            storage.durable_link(b, tmp_path / "claim")
        assert (tmp_path / "claim").read_text() == "claim-a"

    def test_durable_rename_race_loser_sees_file_not_found(self, tmp_path):
        (tmp_path / "src").write_text("x")
        storage.durable_rename(tmp_path / "src", tmp_path / "dst")
        with pytest.raises(FileNotFoundError):
            storage.durable_rename(tmp_path / "src", tmp_path / "elsewhere")

    def test_injected_link_failure_raises_after_retries(self, tmp_path):
        sleeps: list[float] = []
        policy = storage.RetryPolicy(max_attempts=2, base_s=0.1, sleep=sleeps.append)
        (tmp_path / "src").write_text("x")
        plan = plan_of(faults.FaultRule(op="link", path="*claim*", kind="fail"))
        with faults.fault_plan(plan):
            with pytest.raises(OSError):
                storage.durable_link(tmp_path / "src", tmp_path / "claim", retry=policy)
        assert not (tmp_path / "claim").exists()
        assert sleeps == [0.1]  # injected EIO is transient; the budget bounds it

    def test_one_shot_rename_fault_self_heals_via_retry(self, tmp_path):
        sleeps: list[float] = []
        policy = storage.RetryPolicy(max_attempts=3, base_s=0.1, sleep=sleeps.append)
        (tmp_path / "src").write_text("x")
        plan = plan_of(faults.FaultRule(op="rename", path="*dst*", kind="fail", at=0))
        with faults.fault_plan(plan):
            storage.durable_rename(tmp_path / "src", tmp_path / "dst", retry=policy)
        assert (tmp_path / "dst").read_text() == "x"
        assert sleeps == [0.1]


class TestFaultPlanActivation:
    def test_env_knob_inline_json(self, tmp_path, monkeypatch):
        plan_json = json.dumps(
            {"rules": [{"op": "write", "path": "*.bin", "kind": "enospc"}]}
        )
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan_json)
        with pytest.raises(OSError):
            storage.atomic_write_bytes(tmp_path / "x.bin", b"x")
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        storage.atomic_write_bytes(tmp_path / "x.bin", b"x")

    def test_env_knob_plan_file(self, tmp_path, monkeypatch):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json.dumps({"rules": [{"op": "write", "path": "*.bin", "kind": "enospc"}]})
        )
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(plan_path))
        with pytest.raises(OSError):
            storage.atomic_write_bytes(tmp_path / "x.bin", b"x")

    def test_invalid_plan_spec_fails_loudly(self, monkeypatch, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(bad))
        with pytest.raises(ValueError, match="unreadable fault plan"):
            storage.atomic_write_bytes(tmp_path / "x.bin", b"x")

    def test_installed_plan_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            json.dumps({"rules": [{"op": "write", "path": "*", "kind": "enospc"}]}),
        )
        with faults.fault_plan(faults.FaultPlan()):
            storage.atomic_write_bytes(tmp_path / "fine.bin", b"x")

    def test_plan_round_trips_through_json(self):
        plan = faults.seeded_plan(77, [("write", "*.pkl"), ("read", "*.json")], num_faults=6)
        clone = faults.FaultPlan.from_json(plan.to_json())
        assert [r.to_json() for r in clone.rules] == [r.to_json() for r in plan.rules]
        assert clone.seed == 77

    def test_seeded_plans_are_reproducible_and_seed_sensitive(self):
        targets = [("write", "*"), ("read", "*"), ("rename", "*")]
        again = [faults.seeded_plan(5, targets).to_json() for _ in range(2)]
        assert again[0] == again[1]
        assert faults.seeded_plan(6, targets).to_json() != again[0]

    def test_nth_match_addressing(self, tmp_path):
        plan = plan_of(faults.FaultRule(op="write", path="*.bin", kind="enospc", at=2))
        with faults.fault_plan(plan):
            storage.atomic_write_bytes(tmp_path / "a.bin", b"1")
            storage.atomic_write_bytes(tmp_path / "b.bin", b"2")
            with pytest.raises(OSError):
                storage.atomic_write_bytes(tmp_path / "c.bin", b"3")
            storage.atomic_write_bytes(tmp_path / "d.bin", b"4")
        assert plan.stats.total == 1


class TestQuarantine:
    def test_quarantine_moves_bytes_and_writes_reason(self, tmp_path):
        victim = tmp_path / "store" / "bad.pkl"
        victim.parent.mkdir()
        victim.write_bytes(b"corrupt")
        dest = storage.quarantine(victim, tmp_path / "store", "torn pickle", error=ValueError("x"))
        assert dest == tmp_path / "store" / "quarantine" / "bad.pkl"
        assert dest.read_bytes() == b"corrupt"
        assert not victim.exists()
        reason = json.loads(dest.with_name("bad.pkl.reason.json").read_text())
        assert reason["reason"] == "torn pickle"
        assert "ValueError" in reason["error"]
        assert storage.STATS.quarantined == 1

    def test_quarantine_race_loser_returns_none(self, tmp_path):
        assert storage.quarantine(tmp_path / "gone.pkl", tmp_path, "already handled") is None
        assert storage.STATS.quarantined == 0

    def test_quarantine_works_while_a_fault_plan_is_active(self, tmp_path):
        # The containment protocol must stay dependable under the very plan
        # that caused the corruption: rename/write gates do not apply to it.
        victim = tmp_path / "bad.pkl"
        victim.write_bytes(b"corrupt")
        plan = plan_of(
            faults.FaultRule(op="rename", path="*", kind="fail"),
            faults.FaultRule(op="write", path="*", kind="enospc"),
        )
        with faults.fault_plan(plan):
            dest = storage.quarantine(victim, tmp_path, "under chaos")
        assert dest is not None and dest.read_bytes() == b"corrupt"
        assert dest.with_name("bad.pkl.reason.json").exists()


class TestCacheDegradation:
    def test_failing_disk_layer_degrades_with_one_warning(self, tmp_path):
        cache = CompileCache(directory=tmp_path / "cache")
        plan = plan_of(faults.FaultRule(op="write", path="*.pkl", kind="enospc"))
        with faults.fault_plan(plan):
            with pytest.warns(RuntimeWarning, match="degrading to in-process caching"):
                cache.put("deadbeef", {"artifact": 1})
            cache.put("cafe" * 16, {"artifact": 2})  # second failure: no second warning
        assert cache.stats.degraded == 2
        assert cache.stats.disk_errors == 2
        # The memory front still serves both artifacts: no crash, no loss.
        assert cache.get("deadbeef") == {"artifact": 1}
        assert cache.get("cafe" * 16) == {"artifact": 2}

    def test_disk_layer_recovers_when_the_fault_clears(self, tmp_path):
        cache = CompileCache(directory=tmp_path / "cache")
        plan = plan_of(faults.FaultRule(op="write", path="*.pkl", kind="enospc", at=0))
        with faults.fault_plan(plan):
            with pytest.warns(RuntimeWarning):
                cache.put("deadbeef", {"artifact": 1})
            cache.put("cafe" * 16, {"artifact": 2})  # the one-shot fault has passed
        cache.clear_memory()
        assert cache.get("cafe" * 16) == {"artifact": 2}
