"""Frozen pre-refactor (PR 2) Quantum Waltz compiler — golden reference.

This is a verbatim copy of the monolithic ``repro.core.compiler`` driver as
it stood before the pass-pipeline refactor, kept so the golden-equivalence
suite (``tests/test_golden_equivalence.py``) can assert that the new
``DecomposePass -> PlacePass -> RoutePass -> EmitPass`` pipeline emits
bit-for-bit identical physical circuits.  Do not "fix" or modernise this
file: it must keep producing exactly the pre-refactor output.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.core import decompositions
from repro.core.emitter import CompilationError, OpEmitter
from repro.core.encoding import Placement
from repro.core.gateset import ErrorModel, GateSet
from repro.core.mapping import interaction_weights, place_one_per_device, place_two_per_ququart
from repro.core.physical import PhysicalCircuit
from repro.core.routing import Router
from repro.core.strategies import Strategy, ThreeQubitMode
from repro.topology.device import Device

__all__ = ["LegacyCompilationResult", "LegacyQuantumWaltzCompiler", "legacy_compile_circuit"]


@dataclass
class LegacyCompilationResult:
    """Everything produced by one compilation run."""

    logical_circuit: QuantumCircuit
    physical_circuit: PhysicalCircuit
    strategy: Strategy
    device: Device
    initial_placement: Placement
    final_placement: Placement

    @property
    def duration_ns(self) -> float:
        """Total scheduled duration of the compiled circuit."""
        return self.physical_circuit.total_duration_ns()

    @property
    def num_ops(self) -> int:
        return len(self.physical_circuit)

    def op_counts(self):
        """Return a Counter of physical op labels."""
        return self.physical_circuit.count_by_label()


class LegacyQuantumWaltzCompiler:
    """Compile logical circuits onto mixed-radix / ququart hardware."""

    def __init__(self, gate_set: GateSet | None = None, error_model: ErrorModel | None = None):
        if gate_set is not None and error_model is not None:
            gate_set = gate_set.with_error_model(error_model)
        elif gate_set is None:
            gate_set = GateSet(error_model=error_model)
        self.gate_set = gate_set

    # -- public API -------------------------------------------------------------------
    def devices_required(self, circuit: QuantumCircuit, strategy: Strategy) -> int:
        """Return how many physical devices the strategy needs for a circuit."""
        if strategy.spec.qubits_per_device == 2:
            return math.ceil(circuit.num_qubits / 2)
        return circuit.num_qubits

    def compile(
        self,
        circuit: QuantumCircuit,
        strategy: Strategy = Strategy.MIXED_RADIX_CCZ,
        device: Device | None = None,
    ) -> LegacyCompilationResult:
        """Compile ``circuit`` under ``strategy`` onto ``device`` (a mesh by default)."""
        spec = strategy.spec
        needed = self.devices_required(circuit, strategy)
        if device is None:
            device = Device.mesh(needed)
        elif device.num_devices < needed:
            raise CompilationError(
                f"strategy {strategy.name} needs {needed} devices, the device has "
                f"{device.num_devices}"
            )

        weights = interaction_weights(circuit)
        if spec.is_dense and spec.prefer_cswap_targets_together:
            weights = _boost_same_type_pairs(circuit, weights)
        if spec.is_dense:
            placement = place_two_per_ququart(circuit, device, weights)
        else:
            placement = place_one_per_device(circuit, device, weights)

        physical = PhysicalCircuit(
            num_devices=device.num_devices,
            device_dims=spec.device_dim,
            num_logical_qubits=circuit.num_qubits,
            name=f"{circuit.name}-{strategy.name.lower()}",
        )
        physical.initial_placement = placement.copy()

        emitter = OpEmitter(self.gate_set, placement, physical)
        physical.initial_modes = {
            dev: emitter.device_max_level(dev) for dev in range(device.num_devices)
        }
        router = Router(device, emitter, weights, dense=spec.is_dense)

        for gate in circuit.gates:
            self._lower_gate(gate, strategy, emitter, router)

        physical.final_placement = placement.copy()
        return LegacyCompilationResult(
            logical_circuit=circuit,
            physical_circuit=physical,
            strategy=strategy,
            device=device,
            initial_placement=physical.initial_placement,
            final_placement=physical.final_placement,
        )

    # -- gate lowering ---------------------------------------------------------------------
    def _lower_gate(self, gate: Gate, strategy: Strategy, emitter: OpEmitter, router: Router) -> None:
        if gate.num_qubits == 1:
            emitter.emit_single(gate)
            return
        if gate.num_qubits == 2:
            router.route_pair(*gate.qubits)
            emitter.emit_two(gate)
            return
        self._lower_three_qubit(gate, strategy, emitter, router)

    def _lower_sequence(self, gates, strategy, emitter, router) -> None:
        for gate in gates:
            self._lower_gate(gate, strategy, emitter, router)

    def _lower_three_qubit(self, gate: Gate, strategy: Strategy, emitter: OpEmitter, router: Router) -> None:
        spec = strategy.spec
        if gate.name == "ITOFFOLI":
            # Only the iToffoli strategy keeps this gate native; elsewhere we
            # lower it through its Toffoli + CS relation.
            if spec.three_qubit_mode is ThreeQubitMode.ITOFFOLI:
                self._lower_itoffoli_native(gate, strategy, emitter, router)
            else:
                c0, c1, t = gate.qubits
                self._lower_sequence(
                    [Gate("CS", (c0, c1)), Gate("CCX", (c0, c1, t))], strategy, emitter, router
                )
            return

        if spec.regime == "qubit":
            if spec.three_qubit_mode is ThreeQubitMode.ITOFFOLI:
                self._lower_three_itoffoli_strategy(gate, strategy, emitter, router)
            else:
                self._lower_three_decomposed(gate, strategy, emitter, router)
            return
        if spec.regime == "mixed":
            self._lower_three_mixed(gate, strategy, emitter, router)
            return
        self._lower_three_full(gate, strategy, emitter, router)

    # -- qubit-only: full decomposition --------------------------------------------------------
    def _lower_three_decomposed(self, gate: Gate, strategy: Strategy, emitter: OpEmitter, router: Router) -> None:
        if gate.name == "CSWAP":
            control, t0, t1 = gate.qubits
            self._lower_sequence(
                decompositions.cswap_decomposition(control, t0, t1), strategy, emitter, router
            )
            return
        center = router.route_three_sparse(gate.qubits)
        ends = [q for q in gate.qubits if q != center]
        if gate.name == "CCX":
            gates = decompositions.ccx_line_decomposition(*gate.qubits, middle=center)
        elif gate.name == "CCZ":
            gates = decompositions.ccz_phase_polynomial_line(ends[0], center, ends[1])
        else:
            raise CompilationError(f"cannot decompose three-qubit gate {gate.name}")
        self._lower_sequence(gates, strategy, emitter, router)

    # -- qubit-only: native iToffoli pulse ---------------------------------------------------------
    def _lower_three_itoffoli_strategy(self, gate: Gate, strategy: Strategy, emitter: OpEmitter, router: Router) -> None:
        if gate.name == "CSWAP":
            control, t0, t1 = gate.qubits
            self._lower_sequence(
                decompositions.cswap_decomposition(control, t0, t1), strategy, emitter, router
            )
            return
        if gate.name == "CCZ":
            self._lower_sequence(
                decompositions.ccz_to_ccx_form(*gate.qubits), strategy, emitter, router
            )
            return
        self._lower_itoffoli_native(Gate("CCX", gate.qubits), strategy, emitter, router, is_plain_ccx=True)

    def _lower_itoffoli_native(
        self,
        gate: Gate,
        strategy: Strategy,
        emitter: OpEmitter,
        router: Router,
        is_plain_ccx: bool = False,
    ) -> None:
        """Emit a CCX (or a bare iToffoli) through the native iToffoli pulse.

        The pulse requires the target at the centre of a three-device line;
        when routing leaves a control in the centre, the Hadamard
        re-targeting of Figure 6b is applied.  A plain CCX additionally needs
        the corrective CS† between the controls, which requires an extra
        routing SWAP because the controls sit at the two ends of the line.
        """
        c0, c1, target = gate.qubits
        center = router.route_three_sparse(gate.qubits)

        pre: list[Gate] = []
        post: list[Gate] = []
        if center != target:
            pre, retargeted, post = decompositions.retarget_ccx(c0, c1, target, new_target=center)
            c0, c1, target = retargeted.qubits
        for wrapper in pre:
            emitter.emit_single(wrapper)

        emitter.emit_itoffoli(Gate("ITOFFOLI", (c0, c1, target)))
        if is_plain_ccx or gate.name == "CCX":
            # Corrective CS† between the two controls (they are the line ends).
            router.route_pair(c0, c1)
            emitter.emit_two(Gate("CSDG", (c0, c1)))
        for wrapper in post:
            emitter.emit_single(wrapper)

    # -- intermediate mixed-radix ------------------------------------------------------------------
    def _lower_three_mixed(self, gate: Gate, strategy: Strategy, emitter: OpEmitter, router: Router) -> None:
        spec = strategy.spec
        if gate.name == "CSWAP" and not spec.native_cswap:
            self._lower_sequence(
                decompositions.cswap_decomposition(*gate.qubits), strategy, emitter, router
            )
            return
        if gate.name == "CCX" and spec.three_qubit_mode is ThreeQubitMode.NATIVE_CCZ:
            target = gate.qubits[2]
            emitter.emit_single(Gate("H", (target,)))
            self._execute_mixed_native(Gate("CCZ", gate.qubits), strategy, emitter, router)
            emitter.emit_single(Gate("H", (target,)))
            return
        self._execute_mixed_native(gate, strategy, emitter, router)

    def _execute_mixed_native(self, gate: Gate, strategy: Strategy, emitter: OpEmitter, router: Router) -> None:
        """Route, encode, execute and decode a native mixed-radix 3q gate."""
        spec = strategy.spec
        center = router.route_three_sparse(gate.qubits)
        working_gate = gate

        if gate.name == "CCX" and spec.three_qubit_mode is ThreeQubitMode.NATIVE_CCX_RETARGET:
            c0, c1, target = gate.qubits
            if center == target:
                # Retarget so the centre qubit becomes a control: swap roles of
                # the centre (old target) with one of the end controls.
                new_target = next(q for q in (c0, c1) if q != center)
                pre, retargeted, post = decompositions.retarget_ccx(c0, c1, target, new_target=new_target)
                for wrapper in pre:
                    emitter.emit_single(wrapper)
                self._encode_execute_decode(retargeted, center, strategy, emitter)
                for wrapper in post:
                    emitter.emit_single(wrapper)
                return
        self._encode_execute_decode(working_gate, center, strategy, emitter)

    def _choose_partner(self, gate: Gate, center: int) -> int:
        """Pick which end qubit is encoded together with the centre qubit."""
        ends = [q for q in gate.qubits if q != center]
        if gate.name in {"CCX"}:
            controls = gate.qubits[:2]
            target = gate.qubits[2]
            if center in controls:
                other_control = next(c for c in controls if c != center)
                return other_control
            # Centre is the target: encode one of the controls (split config).
            return ends[0]
        if gate.name == "CSWAP":
            control = gate.qubits[0]
            targets = gate.qubits[1:]
            if center in targets:
                other_target = next(t for t in targets if t != center)
                return other_target
            return ends[0]
        # CCZ (and other symmetric gates): any end works.
        return ends[0]

    def _encode_execute_decode(self, gate: Gate, center: int, strategy: Strategy, emitter: OpEmitter) -> None:
        partner = self._choose_partner(gate, center)
        partner_home = emitter.placement.slot_of(partner)
        host_device = emitter.placement.device_of(center)
        emitter.emit_encode(partner, host_device)
        emitter.emit_three_qubit_native(gate)
        emitter.emit_decode(partner, partner_home)

    # -- full ququart -------------------------------------------------------------------------------
    def _lower_three_full(self, gate: Gate, strategy: Strategy, emitter: OpEmitter, router: Router) -> None:
        spec = strategy.spec
        if gate.name == "CSWAP" and not spec.native_cswap:
            self._lower_sequence(
                decompositions.cswap_decomposition(*gate.qubits), strategy, emitter, router
            )
            return
        if gate.name == "CCX":
            target = gate.qubits[2]
            emitter.emit_single(Gate("H", (target,)))
            self._execute_full_native(Gate("CCZ", gate.qubits), strategy, emitter, router)
            emitter.emit_single(Gate("H", (target,)))
            return
        self._execute_full_native(gate, strategy, emitter, router)

    def _execute_full_native(self, gate: Gate, strategy: Strategy, emitter: OpEmitter, router: Router) -> None:
        router.route_three_dense(gate.qubits, gate=gate)
        emitter.emit_three_qubit_native(gate)


def _boost_same_type_pairs(
    circuit: QuantumCircuit,
    weights: dict[tuple[int, int], float],
    factor: float = 3.0,
) -> dict[tuple[int, int], float]:
    """Bias the placement weights so "like" operands of 3q gates pair up.

    The Figure 9a "targets together" strategy packs the two targets of each
    CSWAP (and, symmetrically, the two controls of each CCX) into the same
    ququart so the fastest Table 2 configuration can be used without extra
    data movement.  This is realised at mapping time by boosting the
    interaction weight of those same-type pairs.

    Each distinct pair is boosted exactly once relative to its base weight.
    Boosting per gate occurrence would compound the factor — a pair shared
    by ``k`` three-qubit gates would blow up as ``O(factor**k)`` and swamp
    the router's disruption tie-break, even though the pair's recurrence is
    already captured by the base interaction weights.
    """
    pairs: set[tuple[int, int]] = set()
    for gate in circuit.gates:
        if gate.name == "CSWAP":
            pairs.add(tuple(sorted(gate.qubits[1:])))
        elif gate.name in {"CCX", "CCZ"}:
            pairs.add(tuple(sorted(gate.qubits[:2])))
    boosted = dict(weights)
    for pair in sorted(pairs):
        boosted[pair] = boosted.get(pair, 0.0) * factor + 1.0
    return boosted


def legacy_compile_circuit(
    circuit: QuantumCircuit,
    strategy: Strategy = Strategy.MIXED_RADIX_CCZ,
    device: Device | None = None,
    error_model: ErrorModel | None = None,
) -> LegacyCompilationResult:
    """Convenience wrapper: compile ``circuit`` with a default compiler."""
    compiler = LegacyQuantumWaltzCompiler(error_model=error_model)
    return compiler.compile(circuit, strategy=strategy, device=device)
