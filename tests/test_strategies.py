"""Unit tests for the strategy definitions."""

import pytest

from repro.core.strategies import Strategy, StrategySpec, ThreeQubitMode


class TestStrategySpec:
    def test_regimes(self):
        assert Strategy.QUBIT_ONLY.is_qubit_only
        assert Strategy.MIXED_RADIX_CCZ.is_mixed_radix
        assert Strategy.FULL_QUQUART.is_full_ququart

    def test_device_dimensions(self):
        assert Strategy.QUBIT_ONLY.spec.device_dim == 2
        assert Strategy.QUBIT_ITOFFOLI.spec.device_dim == 2
        assert Strategy.MIXED_RADIX_CCZ.spec.device_dim == 4
        assert Strategy.FULL_QUQUART.spec.device_dim == 4

    def test_qubits_per_device(self):
        assert Strategy.MIXED_RADIX_CCX.spec.qubits_per_device == 1
        assert Strategy.FULL_QUQUART.spec.qubits_per_device == 2

    def test_three_qubit_modes(self):
        assert Strategy.QUBIT_ONLY.spec.three_qubit_mode is ThreeQubitMode.DECOMPOSE
        assert Strategy.QUBIT_ITOFFOLI.spec.three_qubit_mode is ThreeQubitMode.ITOFFOLI
        assert Strategy.MIXED_RADIX_H.spec.three_qubit_mode is ThreeQubitMode.NATIVE_CCX_RETARGET
        assert Strategy.FULL_QUQUART.spec.three_qubit_mode is ThreeQubitMode.NATIVE_CCZ

    def test_cswap_flags(self):
        assert Strategy.FULL_QUQUART_CSWAP_TARGETS.spec.native_cswap
        assert Strategy.FULL_QUQUART_CSWAP_TARGETS.spec.prefer_cswap_targets_together
        assert not Strategy.FULL_QUQUART_CSWAP_BASIC.spec.prefer_cswap_targets_together
        assert not Strategy.MIXED_RADIX_CCZ.spec.native_cswap

    def test_figure7_strategies(self):
        strategies = Strategy.figure7_strategies()
        assert len(strategies) == 6
        assert Strategy.QUBIT_ONLY in strategies
        assert Strategy.FULL_QUQUART in strategies

    def test_invalid_regime_rejected(self):
        with pytest.raises(ValueError):
            StrategySpec(regime="banana", three_qubit_mode=ThreeQubitMode.DECOMPOSE)
