"""Unit tests for the Toffoli / CCZ / CSWAP decompositions (Figure 6)."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import gate_unitary
from repro.core import decompositions


def _unitary_of(gates, num_qubits=3):
    return QuantumCircuit(num_qubits, gates).unitary()


class TestCCZLine:
    @pytest.mark.parametrize("middle", [0, 1, 2])
    def test_matches_ccz_for_any_middle(self, middle):
        operands = [q for q in (0, 1, 2)]
        ends = [q for q in operands if q != middle]
        gates = decompositions.ccz_phase_polynomial_line(ends[0], middle, ends[1])
        assert np.allclose(_unitary_of(gates), gate_unitary("CCZ"), atol=1e-10)

    def test_uses_exactly_eight_cx(self):
        gates = decompositions.ccz_phase_polynomial_line(0, 1, 2)
        names = [g.name for g in gates]
        assert names.count("CX") == 8

    def test_cx_gates_only_touch_the_middle(self):
        gates = decompositions.ccz_phase_polynomial_line(0, 1, 2)
        for gate in gates:
            if gate.name == "CX":
                assert 1 in gate.qubits

    def test_distinct_operands_required(self):
        with pytest.raises(ValueError):
            decompositions.ccz_phase_polynomial_line(0, 0, 2)


class TestCCXLine:
    @pytest.mark.parametrize("middle", [0, 1, 2])
    def test_matches_ccx(self, middle):
        gates = decompositions.ccx_line_decomposition(0, 1, 2, middle=middle)
        assert np.allclose(_unitary_of(gates), gate_unitary("CCX"), atol=1e-10)

    def test_gate_budget_matches_paper(self):
        # Eight two-qubit gates and a handful of single-qubit gates.
        gates = decompositions.ccx_line_decomposition(0, 1, 2)
        two_qubit = [g for g in gates if g.num_qubits == 2]
        single_qubit = [g for g in gates if g.num_qubits == 1]
        assert len(two_qubit) == 8
        assert len(single_qubit) <= 14

    def test_invalid_middle(self):
        with pytest.raises(ValueError):
            decompositions.ccx_line_decomposition(0, 1, 2, middle=5)


class TestOtherDecompositions:
    def test_ccz_to_ccx_form(self):
        gates = decompositions.ccz_to_ccx_form(0, 1, 2)
        assert np.allclose(_unitary_of(gates), gate_unitary("CCZ"), atol=1e-10)

    def test_cswap_decomposition(self):
        gates = decompositions.cswap_decomposition(0, 1, 2)
        assert np.allclose(_unitary_of(gates), gate_unitary("CSWAP"), atol=1e-10)
        assert sum(1 for g in gates if g.name == "CCX") == 1

    def test_cswap_distinct_operands(self):
        with pytest.raises(ValueError):
            decompositions.cswap_decomposition(0, 1, 1)

    def test_itoffoli_decomposition(self):
        gates = decompositions.ccx_itoffoli_decomposition(0, 1, 2)
        assert np.allclose(_unitary_of(gates), gate_unitary("CCX"), atol=1e-10)
        assert [g.name for g in gates] == ["CSDG", "ITOFFOLI"]


class TestRetargeting:
    def test_retarget_to_second_control(self):
        pre, gate, post = decompositions.retarget_ccx(0, 1, 2, new_target=1)
        gates = pre + [gate] + post
        assert np.allclose(_unitary_of(gates), gate_unitary("CCX"), atol=1e-10)
        assert gate.qubits[2] == 1

    def test_retarget_to_first_control(self):
        pre, gate, post = decompositions.retarget_ccx(0, 1, 2, new_target=0)
        gates = pre + [gate] + post
        assert np.allclose(_unitary_of(gates), gate_unitary("CCX"), atol=1e-10)
        assert gate.qubits[2] == 0

    def test_retarget_to_original_target_is_noop(self):
        pre, gate, post = decompositions.retarget_ccx(0, 1, 2, new_target=2)
        assert pre == [] and post == []
        assert gate.qubits == (0, 1, 2)

    def test_retarget_requires_operand(self):
        with pytest.raises(ValueError):
            decompositions.retarget_ccx(0, 1, 2, new_target=7)
