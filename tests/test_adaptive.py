"""Tests for the adaptive sampling mode (variance-targeted early stopping
plus first-deviation importance sampling).

Contract under test (ISSUE 8): the mode is opt-in (``target_stderr`` /
``num_trajectories="auto"``); its numbers are a pure function of seed and
config — bit-identical for any worker count and either fastpath setting;
the stratified round estimator is exactly unbiased at a fixed round count
(two-outcome toy algebra plus a paired z-test against the fixed-count run
on the same streams); and default paths never change: fixed-count rows
keep their exact keys and the estimators are only imported lazily
(machine-checked by rule STAT001).
"""

import numpy as np
import pytest

from repro.core.compiler import compile_circuit
from repro.core.strategies import Strategy
from repro.experiments.shard import point_from_json, point_to_json
from repro.experiments.sweep import SweepPoint, evaluate_point, point_key, write_csv
from repro.noise.adaptive import (
    AdaptiveResult,
    adaptive_round_size,
    default_max_trajectories,
    stratified_contributions,
)
from repro.noise.fastpath import prescan_trajectories, stats
from repro.noise.model import NoiseModel
from repro.noise.trajectory import TrajectorySimulator, _default_state_sampler
from repro.topology.device import CoherenceModel
from helpers import mixed_physical


PHYSICAL = mixed_physical("adaptive-mixed")


def _run(seed=7, target=5e-3, workers=None, cap="auto", batch_size=8) -> AdaptiveResult:
    simulator = TrajectorySimulator(NoiseModel(), rng=seed)
    return simulator.average_fidelity(
        PHYSICAL,
        num_trajectories=cap,
        target_stderr=target,
        batch_size=batch_size,
        workers=workers,
    )


def _same_bits(a: AdaptiveResult, b: AdaptiveResult) -> bool:
    return (
        a.fidelities == b.fidelities
        and a.estimate == b.estimate
        and a.stderr == b.stderr
        and a.n_used == b.n_used
        and a.n_deviating == b.n_deviating
        and a.ess == b.ess
        and a.converged == b.converged
    )


# ---------------------------------------------------------------------------
# determinism contract
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_bit_identical_across_reruns(self):
        assert _same_bits(_run(), _run())

    def test_bit_identical_across_worker_counts(self):
        assert _same_bits(_run(workers=None), _run(workers=2))

    def test_bit_identical_across_fastpath_toggle(self, monkeypatch):
        reference = _run()
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        assert _same_bits(_run(), reference)

    def test_bit_identical_across_batch_sizes(self):
        assert _same_bits(_run(batch_size=8), _run(batch_size=3))

    def test_prescan_clean_rows_bit_match_standard_simulation(self):
        # The importance sampler serves clean trajectories from the record;
        # those fidelities must be the very bits the standard engines produce
        # for the same streams (the fast path's bit-for-bit guarantee).
        simulator = TrajectorySimulator(NoiseModel(), rng=3)
        streams = simulator.rng.spawn(48)
        sampler = _default_state_sampler(PHYSICAL)
        prescan = prescan_trajectories(
            PHYSICAL,
            simulator.noise_model,
            simulator.program_for(PHYSICAL),
            simulator.backend,
            streams,
            sampler,
        )
        fidelities = simulator._fidelities_for_streams(PHYSICAL, streams, sampler, 8)
        assert prescan.clean.any() and (~prescan.clean).any()
        for is_clean, simulated, recorded in zip(
            prescan.clean, fidelities, prescan.clean_fidelity
        ):
            if is_clean:
                assert simulated == recorded
        assert np.all(prescan.clean_probability > 0.0)
        assert np.all(prescan.clean_probability <= 1.0)


# ---------------------------------------------------------------------------
# estimator correctness
# ---------------------------------------------------------------------------


class TestEstimator:
    def test_two_outcome_toy_channel_is_exactly_unbiased(self):
        # One trajectory, clean with probability p (fidelity f_clean from the
        # record) else deviating (fidelity d).  With dyadic inputs the
        # expectation over both outcomes must equal p*f_clean + (1-p)*d
        # EXACTLY, for any baseline c — the no-self-normalization property.
        p, f_clean, d = 0.25, 0.75, 0.5
        probability = np.array([p])
        record_fidelity = np.array([f_clean])
        for baseline in (0.0, 0.125, 0.5, 1.0, -2.0):
            g_clean = stratified_contributions(
                probability, record_fidelity, np.array([True]), [], baseline
            )[0]
            g_dev = stratified_contributions(
                probability, record_fidelity, np.array([False]), [d], baseline
            )[0]
            expectation = p * g_clean + (1.0 - p) * g_dev
            assert expectation == p * f_clean + (1.0 - p) * d

    def test_contribution_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="deviating"):
            stratified_contributions(
                np.array([0.5]), np.array([1.0]), np.array([False]), [], 0.0
            )

    def test_paired_unbiasedness_against_fixed_run(self, monkeypatch):
        # Early stopping is disabled (unreachable target, fixed cap), so the
        # estimator runs a deterministic number of rounds: optional-stopping
        # bias cannot enter, and the per-draw contributions g_j must be
        # mean-unbiased against the naive fidelities W_j of the fixed-count
        # run — which consumes the *same* spawned streams (spawn indices are
        # absolute), making the comparison exactly paired.
        n = 192
        adaptive = _run(seed=42, target=1e-12, cap=n)
        assert adaptive.n_used == n and not adaptive.converged
        reference = TrajectorySimulator(NoiseModel(), rng=42).average_fidelity(
            PHYSICAL, num_trajectories=n, batch_size=8
        )
        g = np.array(adaptive.fidelities)
        w = np.array(reference.fidelities)
        diff = g - w
        z = diff.mean() / (diff.std(ddof=1) / np.sqrt(n))
        assert abs(z) < 4.0
        # The importance sampler must actually reduce variance here.
        assert g.var(ddof=1) < w.var(ddof=1)
        assert adaptive.ess > n

    def test_estimate_within_ci_of_10x_fixed_reference(self):
        adaptive = _run(seed=11, target=6e-3)
        reference = TrajectorySimulator(NoiseModel(), rng=990).average_fidelity(
            PHYSICAL, num_trajectories=10 * adaptive.n_used, batch_size=16
        )
        combined = float(np.hypot(adaptive.stderr, reference.std_error))
        assert abs(adaptive.estimate - reference.mean_fidelity) <= 3.0 * combined

    def test_ess_is_consistent_with_reported_variances(self):
        result = _run(seed=5, target=1e-12, cap=96)
        g_var = np.var(result.fidelities, ddof=1)
        # stderr^2 * n == g variance per draw; ess = naive_var/g_var * n.
        assert result.stderr == pytest.approx(
            float(np.sqrt(g_var / result.n_used)), rel=1e-9
        )
        assert result.ess > 0.0


# ---------------------------------------------------------------------------
# stopping rule and configuration
# ---------------------------------------------------------------------------


class TestStoppingAndConfig:
    def test_converged_run_stops_at_a_round_boundary(self):
        result = _run(seed=7, target=5e-3)
        assert result.converged
        assert result.stderr <= result.target_stderr
        assert result.n_used % adaptive_round_size() == 0
        assert result.n_used < default_max_trajectories()
        assert sum(r.size for r in result.rounds) == result.n_used
        assert sum(r.deviating for r in result.rounds) == result.n_deviating
        assert result.rounds[-1].stderr == result.stderr
        assert result.rounds[-1].estimate == result.estimate
        # Every earlier round was above target (else it would have stopped).
        for earlier in result.rounds[:-1]:
            assert earlier.stderr > result.target_stderr or earlier.stderr == 0.0

    def test_cap_bounds_an_unreachable_target(self):
        result = _run(seed=7, target=1e-12, cap=64)
        assert result.n_used == 64
        assert not result.converged

    def test_trajectory_result_interface(self):
        result = _run(seed=7, target=5e-3)
        assert result.num_trajectories == result.n_used == len(result.fidelities)
        assert result.mean_fidelity == result.estimate
        assert result.std_error == result.stderr
        assert result.adaptive_row() == {
            "n_used": result.n_used,
            "stderr": result.stderr,
            "ess": result.ess,
        }
        assert isinstance(result.adaptive_row()["n_used"], int)

    def test_round_knob_changes_granularity(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPTIVE_ROUND", "16")
        result = _run(seed=7, target=5e-3)
        assert result.n_used % 16 == 0
        assert all(r.size == 16 for r in result.rounds)

    def test_max_traj_knob_caps_auto_points(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPTIVE_MAX_TRAJ", "32")
        result = _run(seed=7, target=1e-12)
        assert result.n_used == 32
        assert not result.converged

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_invalid_round_knob_raises(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_ADAPTIVE_ROUND", value)
        with pytest.raises(ValueError, match="REPRO_ADAPTIVE_ROUND"):
            _run()

    @pytest.mark.parametrize("target", [0.0, -1e-3, float("nan"), float("inf")])
    def test_invalid_target_stderr_raises(self, target):
        with pytest.raises(ValueError, match="target_stderr"):
            _run(target=target)

    def test_auto_without_target_raises(self):
        simulator = TrajectorySimulator(NoiseModel(), rng=0)
        with pytest.raises(ValueError, match="target_stderr"):
            simulator.average_fidelity(PHYSICAL, num_trajectories="auto")

    def test_non_auto_string_budget_raises(self):
        simulator = TrajectorySimulator(NoiseModel(), rng=0)
        with pytest.raises(ValueError, match="auto"):
            simulator.average_fidelity(PHYSICAL, num_trajectories="many")
        with pytest.raises(ValueError, match="auto"):
            simulator.average_fidelity(
                PHYSICAL, num_trajectories="many", target_stderr=1e-2
            )

    def test_rare_event_guard_blocks_deviation_blind_convergence(self):
        # Regression: cnu-7/FULL_QUQUART at this seed draws 32 consecutive
        # clean trajectories (a ~2% event at its ~11% per-draw deviation
        # mass), so the round-1 sample stderr is ~1e-6 — far below any
        # sane target — while the true mean sits ~0.11 lower than the
        # clean fidelity.  Without the deviation-mass guard the stopper
        # declared convergence right there and reported a badly biased
        # estimate; with it the run must keep drawing until the tail shows
        # up and end inside the fixed-count reference's confidence band.
        from repro.workloads import workload_by_name

        physical = compile_circuit(
            workload_by_name("cnu", 7), Strategy.FULL_QUQUART
        ).physical_circuit
        seed, target = 579362555, 2e-2
        result = TrajectorySimulator(NoiseModel(), rng=seed).average_fidelity(
            physical, num_trajectories=1024, target_stderr=target, batch_size=16
        )
        assert result.rounds[0].deviating == 0  # the trap is really armed
        assert result.rounds[0].stderr <= target  # stderr alone would have stopped
        assert len(result.rounds) > 1
        assert result.n_deviating > 0
        reference = TrajectorySimulator(NoiseModel(), rng=seed).average_fidelity(
            physical, num_trajectories=256, batch_size=16
        )
        combined = float(np.hypot(result.stderr, reference.std_error))
        assert abs(result.estimate - reference.mean_fidelity) <= 5.0 * combined


# ---------------------------------------------------------------------------
# sweep / shard integration
# ---------------------------------------------------------------------------


def _adaptive_point(**overrides):
    config = dict(
        workload="cnu",
        size=5,
        strategy="MIXED_RADIX_CCZ",
        num_trajectories="auto",
        target_stderr=2e-2,
        seed=123,
    )
    config.update(overrides)
    return SweepPoint(**config)


class TestSweepIntegration:
    def test_adaptive_point_rows_carry_the_new_columns(self):
        evaluation = evaluate_point(_adaptive_point())
        row = evaluation.as_row()
        assert row["n_used"] > 0
        assert row["stderr"] <= 2e-2
        assert row["ess"] > 0.0
        assert row["fidelity"] == evaluation.simulation.estimate

    def test_fixed_count_rows_are_unchanged(self):
        point = SweepPoint(
            workload="cnu", size=5, strategy="MIXED_RADIX_CCZ", num_trajectories=4, seed=3
        )
        row = evaluate_point(point).as_row()
        assert set(row) == {
            "circuit",
            "num_qubits",
            "strategy",
            "duration_ns",
            "num_ops",
            "gate_eps",
            "coherence_eps",
            "total_eps",
            "fidelity",
            "std_error",
        }

    def test_point_key_ignores_unset_target_stderr(self):
        # Default points must keep their pre-adaptive keys (stored plans and
        # manifests stay valid), while setting the target forks the key.
        fixed = SweepPoint(workload="cnu", size=5, strategy="MIXED_RADIX_CCZ")
        assert point_key(fixed) == point_key(SweepPoint(
            workload="cnu", size=5, strategy="MIXED_RADIX_CCZ", target_stderr=None
        ))
        assert point_key(_adaptive_point()) != point_key(
            _adaptive_point(target_stderr=1e-2)
        )

    def test_shard_point_json_round_trip(self):
        point = _adaptive_point()
        assert point_from_json(point_to_json(point)) == point
        fixed = SweepPoint(workload="cnu", size=5, strategy="MIXED_RADIX_CCZ")
        assert point_from_json(point_to_json(fixed)) == fixed

    def test_csv_union_header_for_mixed_grids(self, tmp_path):
        rows = [
            {"workload": "cnu", "fidelity": 0.9},
            {"workload": "cnu", "fidelity": 0.8, "n_used": 64, "stderr": 0.01, "ess": 80.0},
        ]
        path = write_csv(rows, tmp_path / "mixed.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "workload,fidelity,n_used,stderr,ess"
        assert lines[1] == "cnu,0.9,,,"  # fixed row: empty adaptive cells
        assert lines[2] == "cnu,0.8,64,0.01,80.0"

    def test_coherence_scale_reaches_the_adaptive_model(self):
        # The adaptive path must honour the point's noise configuration:
        # different excited-level decay scales must change the estimator's
        # inputs, hence its bits (the effect size is tiny at paper rates, so
        # the assertion is on propagation, not direction).
        fast_decay = evaluate_point(_adaptive_point(coherence_scale=4.0, target_stderr=3e-2))
        slow_decay = evaluate_point(_adaptive_point(coherence_scale=0.25, target_stderr=3e-2))
        assert fast_decay.simulation.estimate != slow_decay.simulation.estimate


def test_noise_model_direction_reaches_the_adaptive_estimate():
    # A drastically shorter T1 must show up as a clearly lower adaptive
    # estimate (gap far beyond both reported standard errors).
    harsh = TrajectorySimulator(
        NoiseModel(coherence=CoherenceModel(base_t1_ns=2000.0)), rng=1
    ).average_fidelity(PHYSICAL, num_trajectories="auto", target_stderr=2e-2, batch_size=8)
    mild = TrajectorySimulator(NoiseModel(), rng=1).average_fidelity(
        PHYSICAL, num_trajectories="auto", target_stderr=2e-2, batch_size=8
    )
    assert harsh.estimate < mild.estimate - 3.0 * (harsh.stderr + mild.stderr)
