"""Integration tests for the per-figure experiment drivers."""

import pytest

from repro.core.strategies import Strategy
from repro.experiments import (
    evaluate_strategy,
    format_table1,
    format_table2,
    run_cswap_study,
    run_coherence_sensitivity,
    run_eps_study,
    run_fidelity_sweep,
    run_gate_error_sensitivity,
    run_gate_ratio_study,
    run_interleaved_rb,
    summarize_improvements,
)
from repro.experiments.tables import table1_rows, table2_rows
from repro.workloads import generalized_toffoli


class TestTables:
    def test_table1_rows_complete(self):
        rows = table1_rows()
        assert len(rows) == 31
        assert ("qudit", "U", 35.0) in rows

    def test_table2_rows_complete(self):
        rows = table2_rows()
        assert len(rows) == 21
        assert ("mixed_radix", "CCZ01q", 264.0) in rows
        assert ("full_ququart", "CCZ01,0", 232.0) in rows

    def test_formatting(self):
        assert "Table 1" in format_table1()
        assert "CCX01q" in format_table2()


class TestRunner:
    def test_evaluate_strategy_without_simulation(self):
        evaluation = evaluate_strategy(generalized_toffoli(5), Strategy.MIXED_RADIX_CCZ)
        assert evaluation.simulation is None
        assert 0.0 < evaluation.mean_fidelity <= 1.0
        row = evaluation.as_row()
        assert row["strategy"] == "MIXED_RADIX_CCZ"

    def test_evaluate_strategy_with_simulation(self):
        evaluation = evaluate_strategy(
            generalized_toffoli(5), Strategy.FULL_QUQUART, num_trajectories=10, rng=0
        )
        assert evaluation.simulation is not None
        assert evaluation.std_error >= 0.0


class TestRandomizedBenchmarking:
    def test_rb_extracts_sensible_fidelities(self):
        result = run_interleaved_rb(depths=[1, 10, 30, 60], samples_per_depth=5, rng=0)
        assert 0.90 < result.rb_fidelity < 1.0
        assert result.irb_fidelity < result.rb_fidelity
        assert 0.85 < result.interleaved_gate_fidelity <= 1.0
        assert len(result.rb_survival) == 4
        # Survival decays with depth.
        assert result.rb_survival[0] > result.rb_survival[-1]

    def test_rb_result_as_dict(self):
        result = run_interleaved_rb(depths=[1, 5], samples_per_depth=3, rng=1)
        payload = result.as_dict()
        assert set(payload) >= {"depths", "F_RB", "F_IRB", "F_HH"}


class TestSweeps:
    def test_fidelity_sweep_and_improvements(self):
        evaluations = run_fidelity_sweep(
            workloads=("cnu",), sizes=(5,), num_trajectories=5, rng=0
        )
        assert len(evaluations) == len(Strategy.figure7_strategies())
        improvements = summarize_improvements(evaluations)
        assert 5 in improvements
        assert "FULL_QUQUART" in improvements[5]

    def test_fidelity_sweep_respects_memory_ceiling(self):
        evaluations = run_fidelity_sweep(
            workloads=("cnu",),
            sizes=(5,),
            strategies=(Strategy.MIXED_RADIX_CCZ,),
            num_trajectories=5,
            simulate_mixed_radix_up_to=4,
            rng=0,
        )
        assert evaluations[0].simulation is None

    def test_eps_study(self):
        evaluations = run_eps_study(sizes=(5, 9), strategies=(Strategy.QUBIT_ONLY, Strategy.FULL_QUQUART))
        assert len(evaluations) == 4
        by_strategy = {(e.num_qubits, e.strategy): e for e in evaluations}
        assert (
            by_strategy[(9, Strategy.FULL_QUQUART)].metrics.gate_eps
            > by_strategy[(9, Strategy.QUBIT_ONLY)].metrics.gate_eps
        )

    def test_cswap_study(self):
        evaluations = run_cswap_study(
            sizes=(5,), strategies=(Strategy.MIXED_RADIX_CSWAP, Strategy.FULL_QUQUART_CSWAP_TARGETS),
            num_trajectories=5, rng=0,
        )
        assert len(evaluations) == 2

    def test_gate_error_sensitivity_declines(self):
        results = run_gate_error_sensitivity(
            num_qubits=6,
            error_factors=(1.0, 8.0),
            strategies=(Strategy.MIXED_RADIX_CCZ,),
            num_trajectories=0,
        )
        assert len(results) == 2
        low = results[0][1].metrics.total_eps
        high = results[1][1].metrics.total_eps
        assert high < low

    def test_coherence_sensitivity_declines(self):
        results = run_coherence_sensitivity(
            num_qubits=6,
            coherence_scales=(1.0, 16.0),
            strategies=(Strategy.FULL_QUQUART,),
            num_trajectories=0,
        )
        assert results[1][1].metrics.coherence_eps < results[0][1].metrics.coherence_eps

    def test_gate_ratio_study(self):
        results = run_gate_ratio_study(
            num_qubits=6,
            cx_fractions=(0.0, 1.0),
            num_gates=10,
            strategies=(Strategy.MIXED_RADIX_CCZ, Strategy.FULL_QUQUART),
            num_trajectories=0,
        )
        assert len(results) == 4
