"""Unit tests for placement tracking and logical-state packing."""

import numpy as np
import pytest

from repro.core.encoding import Placement, embed_logical_state, extract_logical_state
from repro.core.physical import Slot
from repro.qudit.random import haar_random_state
from repro.qudit.states import basis_state, fidelity


class TestPlacement:
    def test_one_per_device(self):
        placement = Placement.one_per_device(3)
        assert placement.device_of(2) == 2
        assert placement.slot_of(0) == Slot(0, 1)
        assert placement.occupancy(0) == 1
        assert not placement.is_encoded(0)

    def test_two_per_device(self):
        placement = Placement.two_per_device(4)
        assert placement.device_of(0) == placement.device_of(1) == 0
        assert placement.is_encoded(0)
        assert placement.qubits_on_device(1) == [2, 3]

    def test_two_per_device_odd_tail(self):
        placement = Placement.two_per_device(5)
        assert placement.slot_of(4) == Slot(2, 1)
        assert placement.occupancy(2) == 1

    def test_double_assignment_rejected(self):
        placement = Placement()
        placement.assign(0, Slot(0, 1))
        with pytest.raises(ValueError):
            placement.assign(0, Slot(1, 1))
        with pytest.raises(ValueError):
            placement.assign(1, Slot(0, 1))

    def test_move_and_swap(self):
        placement = Placement.one_per_device(2)
        placement.move(0, Slot(1, 0))
        assert placement.device_of(0) == 1
        placement.swap_slots(Slot(1, 0), Slot(1, 1))
        assert placement.slot_of(0) == Slot(1, 1)
        assert placement.slot_of(1) == Slot(1, 0)

    def test_swap_with_free_slot(self):
        placement = Placement.one_per_device(1)
        placement.swap_slots(Slot(0, 1), Slot(3, 1))
        assert placement.device_of(0) == 3
        assert placement.is_free(Slot(0, 1))

    def test_move_to_occupied_slot_rejected(self):
        placement = Placement.one_per_device(2)
        with pytest.raises(ValueError):
            placement.move(0, Slot(1, 1))

    def test_copy_is_independent(self):
        placement = Placement.one_per_device(2)
        clone = placement.copy()
        clone.move(0, Slot(5, 1))
        assert placement.device_of(0) == 0
        assert clone != placement

    def test_not_enough_devices(self):
        with pytest.raises(ValueError):
            Placement.one_per_device(3, devices=[0, 1])


class TestStatePacking:
    def test_embed_basis_state(self):
        placement = Placement({0: Slot(0, 0), 1: Slot(0, 1), 2: Slot(1, 1)})
        logical = basis_state((1, 1, 0), (2, 2, 2))
        physical = embed_logical_state(logical, placement, (4, 2))
        assert fidelity(physical, basis_state((3, 0), (4, 2))) == pytest.approx(1.0)

    def test_embed_extract_round_trip(self, rng):
        placement = Placement({0: Slot(1, 1), 1: Slot(0, 0), 2: Slot(0, 1)})
        logical = haar_random_state(8, rng)
        physical = embed_logical_state(logical, placement, (4, 4))
        recovered = extract_logical_state(physical, placement, (4, 4))
        assert fidelity(logical, recovered) == pytest.approx(1.0)

    def test_embed_mixed_dims_round_trip(self, rng):
        placement = Placement({0: Slot(0, 1), 1: Slot(2, 1), 2: Slot(1, 0), 3: Slot(1, 1)})
        logical = haar_random_state(16, rng)
        physical = embed_logical_state(logical, placement, (2, 4, 4))
        recovered = extract_logical_state(physical, placement, (2, 4, 4))
        assert fidelity(logical, recovered) == pytest.approx(1.0)

    def test_extract_requires_clean_free_slots(self):
        placement = Placement({0: Slot(0, 1)})
        dirty = basis_state((2,), (4,))  # data in slot 0, which is unassigned
        with pytest.raises(ValueError):
            extract_logical_state(dirty, placement, (4,))

    def test_embed_rejects_incomplete_placement(self):
        placement = Placement({0: Slot(0, 1), 2: Slot(1, 1)})
        with pytest.raises(ValueError):
            embed_logical_state(basis_state((0, 0, 0), (2, 2, 2)), placement, (4, 2))

    def test_embed_rejects_bad_length(self):
        placement = Placement({0: Slot(0, 1)})
        with pytest.raises(ValueError):
            embed_logical_state(np.ones(3), placement, (4,))
