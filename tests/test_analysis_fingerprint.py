"""Schema-fingerprint guard tests: mutation without a bump fails, bump passes."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis.fingerprint import (
    REGIONS,
    SCHEMA_FILES,
    check_fingerprints,
    compute_manifest,
    load_manifest,
    region_fingerprint,
    schema_version,
    write_manifest,
)

SRC_ROOT = Path(__file__).parents[1] / "src"

KERNEL_FILE = "repro/noise/program.py"
CACHE_FILE = "repro/core/compile_cache.py"
SWEEP_FILE = "repro/experiments/sweep.py"
SHARD_FILE = "repro/experiments/shard.py"
FASTPATH_FILE = "repro/noise/fastpath.py"


@pytest.fixture
def tree(tmp_path: Path) -> Path:
    """A minimal copy of every fingerprinted file, plus its blessed manifest."""
    root = tmp_path / "srccopy"
    for rel in {region.file for region in REGIONS} | set(SCHEMA_FILES.values()):
        destination = root / rel
        destination.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(SRC_ROOT / rel, destination)
    return root


def edit(root: Path, rel: str, old: str, new: str) -> None:
    path = root / rel
    source = path.read_text(encoding="utf-8")
    assert source.count(old) >= 1, f"anchor not found in {rel}: {old!r}"
    path.write_text(source.replace(old, new, 1), encoding="utf-8")


def test_pristine_tree_is_clean(tree: Path) -> None:
    manifest = compute_manifest(tree)
    findings, notices = check_fingerprints(tree, manifest)
    assert findings == []
    assert notices == []


def test_comment_and_docstring_edits_do_not_trip(tree: Path) -> None:
    manifest = compute_manifest(tree)
    path = tree / KERNEL_FILE
    path.write_text(path.read_text(encoding="utf-8") + "\n# trailing comment\n", encoding="utf-8")
    edit(
        tree,
        KERNEL_FILE,
        "Apply a classified unitary to one flat statevector.",
        "Docstring edited in place.",
    )
    findings, notices = check_fingerprints(tree, manifest)
    assert findings == []
    assert notices == []


def test_kernel_mutation_without_bump_fails(tree: Path) -> None:
    manifest = compute_manifest(tree)
    edit(
        tree,
        KERNEL_FILE,
        "    if backend is None:\n        backend = get_backend()",
        "    state = +state\n    if backend is None:\n        backend = get_backend()",
    )
    findings, _ = check_fingerprints(tree, manifest)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule_id == "FPR001"
    assert finding.path == KERNEL_FILE
    assert "apply_kernel" in finding.message
    assert "CACHE_SCHEMA_VERSION" in finding.message
    assert "stale bits" in finding.message


def test_kernel_mutation_with_bump_passes(tree: Path) -> None:
    manifest = compute_manifest(tree)
    edit(
        tree,
        KERNEL_FILE,
        "    if backend is None:\n        backend = get_backend()",
        "    state = +state\n    if backend is None:\n        backend = get_backend()",
    )
    version = schema_version(tree, "CACHE_SCHEMA_VERSION")
    assert version is not None
    edit(
        tree,
        CACHE_FILE,
        f"CACHE_SCHEMA_VERSION = {version}",
        f"CACHE_SCHEMA_VERSION = {version + 1}",
    )
    findings, notices = check_fingerprints(tree, manifest)
    assert findings == []
    assert any("apply_kernel" in notice and "re-bless" in notice for notice in notices)


def test_point_key_mutation_without_shard_bump_fails(tree: Path) -> None:
    manifest = compute_manifest(tree)
    edit(tree, SWEEP_FILE, 'kwargs = ";".join(', 'kwargs = ",".join(')
    findings, _ = check_fingerprints(tree, manifest)
    assert [f.path for f in findings] == [SWEEP_FILE]
    assert "point_key" in findings[0].message
    assert "SHARD_SCHEMA_VERSION" in findings[0].message


def test_point_key_mutation_with_shard_bump_passes(tree: Path) -> None:
    manifest = compute_manifest(tree)
    edit(tree, SWEEP_FILE, 'kwargs = ";".join(', 'kwargs = ",".join(')
    version = schema_version(tree, "SHARD_SCHEMA_VERSION")
    assert version is not None
    edit(
        tree,
        SHARD_FILE,
        f"SHARD_SCHEMA_VERSION = {version}",
        f"SHARD_SCHEMA_VERSION = {version + 1}",
    )
    findings, notices = check_fingerprints(tree, manifest)
    assert findings == []
    assert notices


def test_replay_region_is_guarded(tree: Path) -> None:
    manifest = compute_manifest(tree)
    edit(
        tree,
        FASTPATH_FILE,
        "def _bundle_key(keys: Sequence[str]) -> str:",
        "def _bundle_key(keys: Sequence[str], extra: int = 0) -> str:",
    )
    findings, _ = check_fingerprints(tree, manifest)
    assert len(findings) == 1
    assert "_bundle_key" in findings[0].message
    assert "CACHE_SCHEMA_VERSION" in findings[0].message


def test_removed_region_without_bump_fails(tree: Path) -> None:
    manifest = compute_manifest(tree)
    edit(tree, SWEEP_FILE, "def point_key(", "def point_key_renamed(")
    findings, _ = check_fingerprints(tree, manifest)
    assert len(findings) == 1
    assert "removed or renamed" in findings[0].message


def test_region_fingerprint_ignores_formatting() -> None:
    a = "def f(x):\n    return (x + 1)\n"
    b = "def f(x):\n    # comment\n    return x + 1\n"
    c = "def f(x):\n    return x + 2\n"
    assert region_fingerprint(a, "f") == region_fingerprint(b, "f")
    assert region_fingerprint(a, "f") != region_fingerprint(c, "f")
    assert region_fingerprint(a, "missing") is None


def test_blessed_manifest_matches_real_tree() -> None:
    """The committed fingerprints.json must be in sync with src/."""
    manifest = load_manifest()
    assert manifest == compute_manifest(SRC_ROOT)
    findings, notices = check_fingerprints(SRC_ROOT, manifest)
    assert findings == []
    assert notices == []


def test_write_manifest_round_trip(tree: Path, tmp_path: Path) -> None:
    target = tmp_path / "manifest.json"
    written = write_manifest(tree, target)
    assert load_manifest(target) == written
    assert written == compute_manifest(tree)
