"""Unit tests for topologies and the device / coherence models."""

import math

import networkx as nx
import pytest

from repro.topology.device import CoherenceModel, Device
from repro.topology.mesh import grid_dimensions, heavy_hex_topology, linear_topology, mesh_topology


class TestMesh:
    def test_grid_dimensions_match_paper_formula(self):
        for n in (4, 5, 9, 12, 21):
            rows, cols = grid_dimensions(n)
            assert rows == math.ceil(math.sqrt(n))
            assert rows * cols >= n

    @pytest.mark.parametrize("n", [1, 2, 5, 9, 16, 21])
    def test_mesh_is_connected_with_exact_node_count(self, n):
        graph = mesh_topology(n)
        assert graph.number_of_nodes() == n
        assert nx.is_connected(graph)

    def test_mesh_has_no_triangles(self):
        graph = mesh_topology(9)
        assert sum(nx.triangles(graph).values()) == 0

    def test_mesh_degree_bounded_by_four(self):
        graph = mesh_topology(20)
        assert max(dict(graph.degree).values()) <= 4

    def test_linear_topology(self):
        graph = linear_topology(5)
        assert graph.number_of_edges() == 4
        assert nx.is_connected(graph)
        with pytest.raises(ValueError):
            linear_topology(0)

    def test_heavy_hex_is_sparser_than_mesh(self):
        heavy = heavy_hex_topology(2)
        n = heavy.number_of_nodes()
        mesh = mesh_topology(n)
        heavy_density = heavy.number_of_edges() / n
        mesh_density = mesh.number_of_edges() / n
        assert nx.is_connected(heavy)
        assert heavy_density < mesh_density


class TestCoherenceModel:
    def test_default_t1_matches_paper(self):
        model = CoherenceModel()
        assert model.base_t1_ns == pytest.approx(163450.0)
        # |2> and |3> T1 follow the 1/k scaling quoted in Section 6.2.
        assert model.t1_of_level(2) == pytest.approx(81725.0)
        assert model.t1_of_level(3) == pytest.approx(163450.0 / 3.0)

    def test_ground_state_does_not_decay(self):
        model = CoherenceModel()
        assert model.decay_rate(0) == 0.0
        assert model.survival_probability(0, 1e9) == 1.0

    def test_excited_scale_only_affects_higher_levels(self):
        model = CoherenceModel(excited_scale=4.0)
        base = CoherenceModel()
        assert model.decay_rate(1) == pytest.approx(base.decay_rate(1))
        assert model.decay_rate(2) == pytest.approx(4.0 * base.decay_rate(2))

    def test_survival_probability_decreases_with_time(self):
        model = CoherenceModel()
        assert model.survival_probability(1, 1000.0) > model.survival_probability(1, 100000.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CoherenceModel(base_t1_ns=0.0)
        with pytest.raises(ValueError):
            CoherenceModel(excited_scale=0.0)
        with pytest.raises(ValueError):
            CoherenceModel().decay_rate(-1)


class TestDevice:
    def test_mesh_constructor(self):
        device = Device.mesh(9)
        assert device.num_devices == 9
        assert device.are_coupled(0, 1)
        assert not device.are_coupled(0, 8)

    def test_distance_and_neighbors(self):
        device = Device.mesh(9)
        assert device.distance(0, 8) == 4
        assert device.neighbors(4) == [1, 3, 5, 7]

    def test_distance_matrix_consistency(self):
        device = Device.mesh(6)
        matrix = device.distance_matrix()
        for a in range(6):
            for b in range(6):
                assert matrix[a][b] == device.distance(a, b)
