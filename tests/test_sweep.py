"""Tests for the parallel sweep engine (repro.experiments.sweep)."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.core.emitter import CompilationError
from repro.core.strategies import Strategy
from repro.experiments import sweep as sweep_mod
from repro.experiments.sweep import (
    PointFailure,
    SweepFailure,
    SweepPoint,
    SweepRunner,
    _compiled,
    evaluate_point,
    point_key,
    point_seeds,
    sweep_rows,
    write_csv,
    write_json,
)


def _points(num_trajectories=4):
    seeds = point_seeds(0, 4)
    return [
        SweepPoint(
            workload="cnu",
            size=5,
            strategy=strategy.name,
            num_trajectories=num_trajectories,
            seed=seed,
        )
        for seed, strategy in zip(
            seeds,
            (
                Strategy.QUBIT_ONLY,
                Strategy.MIXED_RADIX_CCZ,
                Strategy.FULL_QUQUART,
                Strategy.QUBIT_ITOFFOLI,
            ),
        )
    ]


class TestEvaluatePoint:
    def test_point_evaluation_shape(self):
        evaluation = evaluate_point(_points()[1])
        assert evaluation.strategy is Strategy.MIXED_RADIX_CCZ
        assert evaluation.simulation is not None
        assert evaluation.simulation.num_trajectories == 4
        assert 0.0 < evaluation.mean_fidelity <= 1.0

    def test_compilation_memoized(self):
        point = _points()[0]
        first = _compiled(
            point.workload, point.size, point.workload_kwargs, point.strategy, point.error_factor
        )
        second = _compiled(
            point.workload, point.size, point.workload_kwargs, point.strategy, point.error_factor
        )
        assert first is second

    def test_batch_size_does_not_change_results(self):
        base = _points(num_trajectories=6)[1]
        loop = evaluate_point(
            SweepPoint(**{**base.__dict__, "batch_size": None})
        ).simulation.fidelities
        batched = evaluate_point(
            SweepPoint(**{**base.__dict__, "batch_size": 3})
        ).simulation.fidelities
        auto = evaluate_point(base).simulation.fidelities
        assert loop == batched == auto

    def test_workload_kwargs(self):
        point = SweepPoint(
            workload="synthetic",
            size=5,
            strategy="QUBIT_ONLY",
            workload_kwargs=(("num_gates", 6), ("cx_fraction", 0.5), ("seed", 3)),
        )
        evaluation = evaluate_point(point)
        assert evaluation.num_qubits == 5


class TestSweepRunner:
    def test_inline_run_preserves_order(self):
        points = _points()
        evaluations = SweepRunner(max_workers=1).run(points)
        assert [e.strategy.name for e in evaluations] == [p.strategy for p in points]

    def test_process_pool_matches_inline(self):
        points = _points(num_trajectories=2)
        inline = SweepRunner(max_workers=1).run(points)
        pooled = SweepRunner(max_workers=2).run(points)
        assert [e.simulation.fidelities for e in inline] == [
            e.simulation.fidelities for e in pooled
        ]

    def test_generic_map(self):
        runner = SweepRunner(max_workers=1)
        assert runner.map(abs, [-1, -2, 3]) == [1, 2, 3]

    def test_windowed_map_preserves_order_beyond_the_window(self):
        # More tasks than the 2-per-worker submission window: results must
        # still stream back in input order as the window refills.
        tasks = list(range(-12, 0))
        assert SweepRunner(max_workers=2).map(abs, tasks) == [abs(t) for t in tasks]

    def test_artifacts(self, tmp_path):
        points = _points(num_trajectories=2)
        csv_path = tmp_path / "sweep.csv"
        json_path = tmp_path / "sweep.json"
        runner = SweepRunner(max_workers=1, csv_path=csv_path, json_path=json_path)
        evaluations = runner.run(points)

        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == len(points) + 1  # header
        assert "workload" in lines[0] and "fidelity" in lines[0]

        payload = json.loads(json_path.read_text())
        assert len(payload) == len(points)
        assert payload[0]["workload"] == "cnu"
        assert payload[0]["strategy"] == points[0].strategy
        assert len(evaluations) == len(points)

    def test_rows_include_axis(self):
        point = SweepPoint(workload="cnu", size=5, strategy="QUBIT_ONLY", axis=2.5)
        rows = sweep_rows([point], [evaluate_point(point)])
        assert rows[0]["axis"] == 2.5

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            SweepRunner(max_workers=0)


class TestFailureAttribution:
    """A dead point must surface with its key, not as an anonymous traceback."""

    def _fail_strategy(self, monkeypatch, doomed: str):
        real_evaluate = sweep_mod.evaluate_point

        def failing_evaluate(point):
            if point.strategy == doomed:
                raise CompilationError("injected failure", gate="CCX(0,1,2)", pass_name="route")
            return real_evaluate(point)

        monkeypatch.setattr(sweep_mod, "evaluate_point", failing_evaluate)

    def test_run_records_failed_point_key(self, tmp_path, monkeypatch):
        points = _points(num_trajectories=0)
        doomed = points[2]
        self._fail_strategy(monkeypatch, doomed.strategy)
        csv_path = tmp_path / "sweep.csv"
        runner = SweepRunner(max_workers=1, csv_path=csv_path)

        with pytest.raises(SweepFailure) as excinfo:
            runner.run(points)
        [failure] = excinfo.value.failures
        assert isinstance(failure, PointFailure)
        assert failure.point_key == point_key(doomed)
        assert failure.point == doomed
        assert failure.error_type == "CompilationError"
        assert failure.pass_name == "route"
        assert doomed.strategy in str(excinfo.value)

        # The failure artifact is written next to the configured outputs and
        # names the point durably; the data artifact itself is withheld.
        payload = json.loads((tmp_path / "sweep.failures.json").read_text())
        assert payload == [failure.as_record()]
        assert payload[0]["point_key"] == point_key(doomed)
        assert payload[0]["strategy"] == doomed.strategy
        assert not csv_path.exists()

    def test_failures_do_not_abort_remaining_points(self, monkeypatch):
        points = _points(num_trajectories=0)
        self._fail_strategy(monkeypatch, points[0].strategy)
        runner = SweepRunner(max_workers=1)
        outcomes = dict(runner.iter_evaluate(points))
        assert isinstance(outcomes[0], PointFailure)
        # All later points still evaluated normally despite the earlier death.
        assert all(not isinstance(outcomes[i], PointFailure) for i in range(1, len(points)))

    def test_explicit_failures_path(self, tmp_path, monkeypatch):
        points = _points(num_trajectories=0)
        self._fail_strategy(monkeypatch, points[1].strategy)
        failures_path = tmp_path / "deaths.json"
        runner = SweepRunner(max_workers=1, failures_path=failures_path)
        with pytest.raises(SweepFailure):
            runner.run(points)
        assert json.loads(failures_path.read_text())[0]["strategy"] == points[1].strategy


class TestPointKey:
    def test_key_ignores_scheduling_only_fields(self):
        # SweepRunner.schedule annotates `workers` with a machine-dependent
        # count; the key must not change, or failure records written on a
        # multi-core host would never match the plan's manifest keys.
        point = _points()[0]
        assert point_key(replace(point, workers=8)) == point_key(point)

    def test_key_is_stable_and_field_sensitive(self):
        point = _points()[0]
        assert point_key(point) == point_key(point)
        for changed in (
            SweepPoint(**{**point.__dict__, "seed": point.seed + 1}),
            SweepPoint(**{**point.__dict__, "error_factor": 2.0}),
            SweepPoint(**{**point.__dict__, "strategy": "FULL_QUQUART"}),
            SweepPoint(**{**point.__dict__, "workload_kwargs": (("depth", 3),)}),
        ):
            assert point_key(changed) != point_key(point)


class TestSeeds:
    def test_point_seeds_deterministic(self):
        assert point_seeds(7, 5) == point_seeds(7, 5)
        assert point_seeds(7, 5) != point_seeds(8, 5)

    def test_point_seeds_accepts_generator(self):
        generator = np.random.default_rng(1)
        seeds = point_seeds(generator, 3)
        assert len(seeds) == 3
