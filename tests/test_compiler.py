"""Integration tests for the Quantum Waltz compiler.

The central invariant: for every strategy, executing the compiled physical
circuit noise-free on the physical register and decoding through the final
placement must reproduce the logical circuit's output state exactly.
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.core.compiler import QuantumWaltzCompiler, compile_circuit
from repro.core.emitter import CompilationError
from repro.core.encoding import embed_logical_state, extract_logical_state
from repro.core.gateset import ErrorModel, GateClass
from repro.core.strategies import Strategy
from repro.noise.model import NoiseModel
from repro.noise.trajectory import TrajectorySimulator
from repro.qudit.random import haar_random_state
from repro.topology.device import Device
from repro.workloads import cuccaro_adder, generalized_toffoli, qram_circuit


def assert_compilation_correct(circuit: QuantumCircuit, strategy: Strategy, seed: int = 11) -> None:
    """Check the compiled circuit implements the logical circuit exactly."""
    result = compile_circuit(circuit, strategy)
    physical = result.physical_circuit
    simulator = TrajectorySimulator(NoiseModel.noiseless(), rng=seed)
    rng = np.random.default_rng(seed)
    logical_in = haar_random_state(2**circuit.num_qubits, rng)
    expected = circuit.apply_to_state(logical_in)
    physical_in = embed_logical_state(logical_in, result.initial_placement, physical.device_dims)
    physical_out = simulator.run_ideal(physical, physical_in)
    recovered = extract_logical_state(physical_out, result.final_placement, physical.device_dims)
    fidelity = abs(np.vdot(expected, recovered)) ** 2
    assert fidelity == pytest.approx(1.0, abs=1e-9), f"{strategy.name} broke the circuit"


class TestCompilationCorrectness:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_mixed_gate_circuit(self, small_toffoli_circuit, strategy):
        assert_compilation_correct(small_toffoli_circuit, strategy)

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_single_toffoli(self, tiny_ccx_circuit, strategy):
        assert_compilation_correct(tiny_ccx_circuit, strategy)

    @pytest.mark.parametrize(
        "strategy",
        [Strategy.QUBIT_ONLY, Strategy.QUBIT_ITOFFOLI, Strategy.MIXED_RADIX_CCZ, Strategy.FULL_QUQUART],
    )
    def test_generalized_toffoli_workload(self, strategy):
        assert_compilation_correct(generalized_toffoli(6), strategy)

    @pytest.mark.parametrize(
        "strategy",
        [Strategy.MIXED_RADIX_CCX, Strategy.MIXED_RADIX_H, Strategy.FULL_QUQUART_CSWAP_TARGETS],
    )
    def test_qram_workload(self, strategy):
        assert_compilation_correct(qram_circuit(6), strategy)

    def test_cuccaro_workload_full_ququart(self):
        assert_compilation_correct(cuccaro_adder(6), Strategy.FULL_QUQUART)

    def test_parameterized_rotations(self):
        circuit = QuantumCircuit(4).rx(0.3, 0).ccx(0, 1, 2).rz(1.1, 3).cx(2, 3).u3(0.2, 0.4, 0.6, 1)
        for strategy in (Strategy.QUBIT_ONLY, Strategy.MIXED_RADIX_CCZ, Strategy.FULL_QUQUART):
            assert_compilation_correct(circuit, strategy)


class TestCompilationStructure:
    def test_qubit_only_has_no_higher_level_ops(self, small_toffoli_circuit):
        result = compile_circuit(small_toffoli_circuit, Strategy.QUBIT_ONLY)
        for op in result.physical_circuit.ops:
            assert not op.gate_class.uses_higher_levels

    def test_qubit_only_device_dims_are_two(self, tiny_ccx_circuit):
        result = compile_circuit(tiny_ccx_circuit, Strategy.QUBIT_ONLY)
        assert set(result.physical_circuit.device_dims) == {2}

    def test_mixed_radix_wraps_three_qubit_gates_in_enc(self, tiny_ccx_circuit):
        result = compile_circuit(tiny_ccx_circuit, Strategy.MIXED_RADIX_CCZ)
        counts = result.physical_circuit.count_by_class()
        assert counts[GateClass.ENCODE] == 2
        assert counts[GateClass.MIXED_RADIX_THREE_Q] == 1

    def test_full_ququart_uses_half_the_devices(self):
        circuit = generalized_toffoli(8)
        sparse = compile_circuit(circuit, Strategy.MIXED_RADIX_CCZ)
        dense = compile_circuit(circuit, Strategy.FULL_QUQUART)
        assert dense.physical_circuit.num_devices == 4
        assert sparse.physical_circuit.num_devices == 8

    def test_itoffoli_strategy_uses_native_pulse(self, tiny_ccx_circuit):
        result = compile_circuit(tiny_ccx_circuit, Strategy.QUBIT_ITOFFOLI)
        labels = result.physical_circuit.count_by_label()
        assert labels["iToffoli"] == 1

    def test_qubit_only_toffoli_uses_eight_cx(self, tiny_ccx_circuit):
        result = compile_circuit(tiny_ccx_circuit, Strategy.QUBIT_ONLY)
        labels = result.physical_circuit.count_by_label()
        assert labels["CX2"] == 8

    def test_full_ququart_is_fastest(self, small_toffoli_circuit):
        durations = {
            strategy: compile_circuit(small_toffoli_circuit, strategy).duration_ns
            for strategy in (Strategy.QUBIT_ONLY, Strategy.MIXED_RADIX_CCZ, Strategy.FULL_QUQUART)
        }
        assert durations[Strategy.FULL_QUQUART] < durations[Strategy.QUBIT_ONLY]

    def test_error_model_scales_op_error_rates(self, tiny_ccx_circuit):
        compiler = QuantumWaltzCompiler(error_model=ErrorModel(ququart_error_factor=5.0))
        result = compiler.compile(tiny_ccx_circuit, Strategy.MIXED_RADIX_CCZ)
        three_qubit_ops = [
            op for op in result.physical_circuit.ops
            if op.gate_class is GateClass.MIXED_RADIX_THREE_Q
        ]
        assert three_qubit_ops and all(op.error_rate == pytest.approx(0.05) for op in three_qubit_ops)

    def test_explicit_device_too_small_rejected(self, small_toffoli_circuit):
        with pytest.raises(CompilationError):
            compile_circuit(small_toffoli_circuit, Strategy.QUBIT_ONLY, device=Device.mesh(3))

    def test_devices_required(self, small_toffoli_circuit):
        compiler = QuantumWaltzCompiler()
        assert compiler.devices_required(small_toffoli_circuit, Strategy.QUBIT_ONLY) == 5
        assert compiler.devices_required(small_toffoli_circuit, Strategy.FULL_QUQUART) == 3

    def test_compilation_result_metadata(self, tiny_ccx_circuit):
        result = compile_circuit(tiny_ccx_circuit, Strategy.MIXED_RADIX_CCZ)
        assert result.strategy is Strategy.MIXED_RADIX_CCZ
        assert result.num_ops == len(result.physical_circuit)
        assert result.duration_ns > 0
        assert result.op_counts()


class TestBoostSameTypePairs:
    def test_boost_applied_once_per_pair(self):
        from repro.core.compiler import _boost_same_type_pairs

        circuit = QuantumCircuit(4)
        for _ in range(5):
            circuit.ccx(0, 1, 2)
        weights = {(0, 1): 2.0}
        boosted = _boost_same_type_pairs(circuit, weights, factor=3.0)
        # One boost relative to the base weight, regardless of how many
        # gates share the pair: 2.0 * 3.0 + 1.0, not O(3**5).
        assert boosted[(0, 1)] == pytest.approx(7.0)

    def test_repeated_cswap_targets_do_not_blow_up(self):
        from repro.core.compiler import _boost_same_type_pairs

        circuit = QuantumCircuit(3)
        for _ in range(8):
            circuit.cswap(0, 1, 2)
        boosted = _boost_same_type_pairs(circuit, {(1, 2): 1.0}, factor=3.0)
        assert boosted[(1, 2)] == pytest.approx(4.0)

    def test_unseen_pair_gets_base_boost(self):
        from repro.core.compiler import _boost_same_type_pairs

        from repro.circuits.gate import Gate

        circuit = QuantumCircuit(3)
        circuit.append(Gate("CCZ", (0, 1, 2)))
        boosted = _boost_same_type_pairs(circuit, {}, factor=3.0)
        assert boosted[(0, 1)] == pytest.approx(1.0)

    def test_other_weights_untouched(self):
        from repro.core.compiler import _boost_same_type_pairs

        circuit = QuantumCircuit(4)
        circuit.ccx(0, 1, 2)
        boosted = _boost_same_type_pairs(circuit, {(2, 3): 5.0}, factor=3.0)
        assert boosted[(2, 3)] == 5.0
