"""Property-based tests (hypothesis) on the core data structures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.core.compiler import compile_circuit
from repro.core.encoding import Placement, embed_logical_state, extract_logical_state
from repro.core.metrics import evaluate_metrics
from repro.core.physical import Slot
from repro.core.strategies import Strategy
from repro.noise.model import NoiseModel
from repro.noise.trajectory import TrajectorySimulator
from repro.qudit.random import haar_random_state
from repro.qudit.states import apply_unitary, index_to_levels, levels_to_index, state_dimension
from repro.qudit.unitaries import embed_qubit_unitary, qubit_slots
from repro.circuits.library import gate_unitary


# -- strategies -------------------------------------------------------------------------
dims_strategy = st.lists(st.sampled_from([2, 4]), min_size=1, max_size=4).map(tuple)


@st.composite
def random_circuits(draw, max_qubits=5, max_gates=8):
    """Random logical circuits over the compiler's supported gate set."""
    num_qubits = draw(st.integers(min_value=3, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    circuit = QuantumCircuit(num_qubits, name="hypothesis")
    one_qubit = ["X", "H", "S", "T", "Z"]
    for _ in range(num_gates):
        arity = draw(st.sampled_from([1, 1, 2, 2, 3]))
        qubits = draw(
            st.lists(
                st.integers(0, num_qubits - 1), min_size=arity, max_size=arity, unique=True
            )
        )
        if arity == 1:
            circuit.add(draw(st.sampled_from(one_qubit)), *qubits)
        elif arity == 2:
            circuit.add(draw(st.sampled_from(["CX", "CZ", "SWAP"])), *qubits)
        else:
            circuit.add(draw(st.sampled_from(["CCX", "CCZ", "CSWAP"])), *qubits)
    return circuit


class TestIndexingProperties:
    @given(dims=dims_strategy, data=st.data())
    def test_index_level_round_trip(self, dims, data):
        index = data.draw(st.integers(0, state_dimension(dims) - 1))
        assert levels_to_index(index_to_levels(index, dims), dims) == index

    @given(dims=dims_strategy)
    def test_state_dimension_is_product(self, dims):
        assert state_dimension(dims) == int(np.prod(dims))


class TestEmbeddingProperties:
    @given(dims=dims_strategy, seed=st.integers(0, 2**16), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_embedded_gates_are_unitary(self, dims, seed, data):
        slots = qubit_slots(dims)
        arity = data.draw(st.integers(1, min(3, len(slots))))
        indices = data.draw(
            st.lists(st.integers(0, len(slots) - 1), min_size=arity, max_size=arity, unique=True)
        )
        operand_slots = [slots[i] for i in indices]
        from repro.qudit.random import haar_random_unitary

        gate = haar_random_unitary(2**arity, seed)
        embedded = embed_qubit_unitary(gate, operand_slots, dims)
        dim = state_dimension(dims)
        assert np.allclose(embedded @ embedded.conj().T, np.eye(dim), atol=1e-9)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_apply_unitary_preserves_norm(self, seed):
        rng = np.random.default_rng(seed)
        dims = (4, 2, 4)
        state = haar_random_state(dims, rng)
        gate = embed_qubit_unitary(gate_unitary("CX"), [(0, 1), (1, 0)], (4, 2))
        out = apply_unitary(state, gate, (0, 1), dims)
        assert np.isclose(np.linalg.norm(out), 1.0)


class TestPackingProperties:
    @given(seed=st.integers(0, 2**16), num_qubits=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_embed_extract_round_trip(self, seed, num_qubits):
        rng = np.random.default_rng(seed)
        num_devices = num_qubits  # one per device, slot 1
        placement = Placement.one_per_device(num_qubits)
        dims = (4,) * num_devices
        logical = haar_random_state(2**num_qubits, rng)
        physical = embed_logical_state(logical, placement, dims)
        recovered = extract_logical_state(physical, placement, dims)
        assert abs(np.vdot(logical, recovered)) ** 2 > 1.0 - 1e-9


class TestCompilerProperties:
    @given(circuit=random_circuits(), strategy=st.sampled_from(
        [Strategy.QUBIT_ONLY, Strategy.QUBIT_ITOFFOLI, Strategy.MIXED_RADIX_CCZ,
         Strategy.MIXED_RADIX_CCX, Strategy.FULL_QUQUART]
    ))
    @settings(max_examples=20, deadline=None)
    def test_compilation_preserves_semantics(self, circuit, strategy):
        result = compile_circuit(circuit, strategy)
        physical = result.physical_circuit
        simulator = TrajectorySimulator(NoiseModel.noiseless(), rng=0)
        logical_in = haar_random_state(2**circuit.num_qubits, np.random.default_rng(7))
        expected = circuit.apply_to_state(logical_in)
        physical_in = embed_logical_state(logical_in, result.initial_placement, physical.device_dims)
        physical_out = simulator.run_ideal(physical, physical_in)
        recovered = extract_logical_state(physical_out, result.final_placement, physical.device_dims)
        assert abs(np.vdot(expected, recovered)) ** 2 > 1.0 - 1e-9

    @given(circuit=random_circuits(max_qubits=5, max_gates=6))
    @settings(max_examples=15, deadline=None)
    def test_metrics_are_probabilities(self, circuit):
        result = compile_circuit(circuit, Strategy.MIXED_RADIX_CCZ)
        metrics = evaluate_metrics(result.physical_circuit)
        assert 0.0 < metrics.gate_eps <= 1.0
        assert 0.0 < metrics.coherence_eps <= 1.0
        assert metrics.duration_ns >= 0.0
